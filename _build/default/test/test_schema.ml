(* Tests for xsm_schema: abstract syntax, well-formedness (§3),
   content-model automata, the §6.2 validator, the §8 theorem. *)

open Xsm_schema
module Tree = Xsm_xml.Tree
module Name = Xsm_xml.Name

let check = Alcotest.(check bool)
let check_int = Alcotest.(check int)

let names ss = List.map Name.of_string_exn ss

let automaton g =
  match Content_automaton.make g with
  | Ok a -> a
  | Error e -> Alcotest.fail e

(* ---------------- ast ---------------- *)

let test_repetition () =
  check "once valid" true (Ast.repetition_valid Ast.once);
  check "many valid" true (Ast.repetition_valid Ast.many);
  check "negative min" false (Ast.repetition_valid (Ast.repeat (-1) None));
  check "min>max" false (Ast.repetition_valid (Ast.repeat 3 (Some 2)))

let test_group_observers () =
  check "ex2 not empty" false (Ast.group_is_empty Samples.example2_group);
  check "empty" true (Ast.group_is_empty (Ast.sequence []));
  Alcotest.(check (list string)) "names" [ "B"; "C" ]
    (List.map Name.to_string (Ast.declared_element_names Samples.example2_group));
  (* nested groups contribute their names *)
  let nested =
    Ast.sequence
      [ Ast.elem_p (Ast.element "A" (Ast.named_type "xs:string"));
        Ast.group_p Samples.example2_group ]
  in
  Alcotest.(check (list string)) "nested names" [ "A"; "B"; "C" ]
    (List.map Name.to_string (Ast.declared_element_names nested))

(* ---------------- schema_check ---------------- *)

let test_check_example_schemas () =
  check "example7" true (Result.is_ok (Schema_check.check Samples.example7_schema));
  check "library" true (Result.is_ok (Schema_check.check Samples.library_schema))

let test_check_unknown_type () =
  let s = Ast.schema (Ast.element "root" (Ast.named_type "NoSuchType")) in
  match Schema_check.check s with
  | Error (e :: _) -> check "mentions requirement" true
      (String.length e.Schema_check.message > 0)
  | Error [] | Ok () -> Alcotest.fail "expected an error"

let test_check_duplicate_names_in_group () =
  let g =
    Ast.sequence
      [ Ast.elem_p (Ast.element "A" (Ast.named_type "xs:string"));
        Ast.elem_p (Ast.element "A" (Ast.named_type "xs:int")) ]
  in
  let s = Ast.schema (Ast.element "root" (Ast.Anonymous (Ast.complex (Some g)))) in
  check "rejected" true (Result.is_error (Schema_check.check s))

let test_check_upa_violation () =
  (* (a{0,2}){1,2} is ambiguous *)
  let inner = Ast.sequence [ Ast.elem_p (Ast.element ~repetition:(Ast.repeat 0 (Some 2)) "a" (Ast.named_type "xs:string")) ] in
  let g = Ast.sequence ~repetition:(Ast.repeat 1 (Some 2)) [ Ast.group_p inner ] in
  let s = Ast.schema (Ast.element "root" (Ast.Anonymous (Ast.complex (Some g)))) in
  match Schema_check.check s with
  | Error es ->
    check "UPA reported" true
      (List.exists (fun e -> String.length e.Schema_check.message > 0) es)
  | Ok () -> Alcotest.fail "expected UPA violation"

let test_check_duplicate_attributes () =
  let ct =
    Ast.complex ~attributes:[ Ast.attribute "x" "xs:string"; Ast.attribute "x" "xs:int" ] None
  in
  let s = Ast.schema (Ast.element "root" (Ast.Anonymous ct)) in
  check "rejected" true (Result.is_error (Schema_check.check s))

let test_check_recursive_schema_terminates () =
  (* type Node contains element child of type Node: legal and finite *)
  let node_type =
    Ast.complex
      (Some
         (Ast.sequence
            [ Ast.elem_p (Ast.element ~repetition:Ast.many "child" (Ast.named_type "NodeT")) ]))
  in
  let s =
    Ast.schema ~complex_types:[ ("NodeT", node_type) ]
      (Ast.element "root" (Ast.named_type "NodeT"))
  in
  check "recursive ok" true (Result.is_ok (Schema_check.check s))

let test_resolve () =
  let s = Samples.example7_schema in
  (match Schema_check.resolve s (Ast.named_type "BookPublication") with
  | Ok (Schema_check.Resolved_complex _) -> ()
  | _ -> Alcotest.fail "BookPublication should resolve to a complex type");
  (match Schema_check.resolve s (Ast.named_type "xs:string") with
  | Ok (Schema_check.Resolved_simple _) -> ()
  | _ -> Alcotest.fail "xs:string should resolve to a simple type");
  check "unknown" true (Result.is_error (Schema_check.resolve s (Ast.named_type "Zork")));
  check "complex as simple rejected" true
    (Result.is_error (Schema_check.resolve_simple s (Name.of_string_exn "BookPublication")))

(* ---------------- content automata ---------------- *)

let test_automaton_sequence () =
  let a = automaton Samples.example2_group in
  check "BC" true (Content_automaton.matches a (names [ "B"; "C" ]));
  check "CB" false (Content_automaton.matches a (names [ "C"; "B" ]));
  check "B" false (Content_automaton.matches a (names [ "B" ]));
  check "empty" false (Content_automaton.matches a []);
  check "BCB" false (Content_automaton.matches a (names [ "B"; "C"; "B" ]))

let test_automaton_choice_star () =
  let a = automaton Samples.example3_group in
  check "empty" true (Content_automaton.matches a []);
  check "mixed" true (Content_automaton.matches a (names [ "zero"; "one"; "one"; "zero" ]));
  check "foreign" false (Content_automaton.matches a (names [ "zero"; "two" ]))

let test_automaton_bounded () =
  let g =
    Ast.sequence
      [ Ast.elem_p (Ast.element ~repetition:(Ast.repeat 2 (Some 4)) "x" (Ast.named_type "xs:string")) ]
  in
  let a = automaton g in
  List.iter
    (fun (n, expected) ->
      check (string_of_int n) expected
        (Content_automaton.matches a (names (List.init n (fun _ -> "x")))))
    [ (0, false); (1, false); (2, true); (3, true); (4, true); (5, false) ]

let test_automaton_large_bound () =
  (* Example 6 uses maxOccurs=1000 *)
  let g =
    Ast.sequence
      [ Ast.elem_p (Ast.element ~repetition:(Ast.repeat 0 (Some 1000)) "Book" (Ast.named_type "xs:string")) ]
  in
  let a = automaton g in
  check_int "positions" 1000 (Content_automaton.position_count a);
  check "700 books" true
    (Content_automaton.matches a (names (List.init 700 (fun _ -> "Book"))));
  check "1001 books" false
    (Content_automaton.matches a (names (List.init 1001 (fun _ -> "Book"))))

let test_automaton_too_large () =
  let g =
    Ast.sequence
      [ Ast.elem_p (Ast.element ~repetition:(Ast.repeat 0 (Some 100000)) "x" (Ast.named_type "xs:string")) ]
  in
  check "rejected" true (Result.is_error (Content_automaton.make g))

let test_automaton_nested_groups () =
  (* (B C | (D | E)+ ) F *)
  let g =
    Ast.sequence
      [
        Ast.group_p
          (Ast.choice
             [
               Ast.group_p Samples.example2_group;
               Ast.group_p
                 (Ast.choice ~repetition:(Ast.repeat 1 None)
                    [
                      Ast.elem_p (Ast.element "D" (Ast.named_type "xs:string"));
                      Ast.elem_p (Ast.element "E" (Ast.named_type "xs:string"));
                    ]);
             ]);
        Ast.elem_p (Ast.element "F" (Ast.named_type "xs:string"));
      ]
  in
  let a = automaton g in
  check "BCF" true (Content_automaton.matches a (names [ "B"; "C"; "F" ]));
  check "DF" true (Content_automaton.matches a (names [ "D"; "F" ]));
  check "DEDF" true (Content_automaton.matches a (names [ "D"; "E"; "D"; "F" ]));
  check "F alone" false (Content_automaton.matches a (names [ "F" ]));
  check "BCDF" false (Content_automaton.matches a (names [ "B"; "C"; "D"; "F" ]))

let test_automaton_determinism_flag () =
  let det = automaton Samples.example2_group in
  check "ex2 deterministic" true (Content_automaton.is_deterministic det);
  (* choice of two same-named elements with different types: UPA broken *)
  let ambiguous =
    Ast.choice
      [
        Ast.elem_p (Ast.element "A" (Ast.named_type "xs:string"));
        Ast.elem_p (Ast.element "A" (Ast.named_type "xs:int"));
      ]
  in
  check "ambiguous flagged" false (Content_automaton.is_deterministic (automaton ambiguous))

let test_automaton_run_attribution () =
  let a = automaton Samples.example2_group in
  (match Content_automaton.run a (names [ "B"; "C" ]) with
  | Some [ d1; d2 ] ->
    check "B decl" true (Name.to_string d1.Ast.elem_name = "B");
    check "C decl" true (Name.to_string d2.Ast.elem_name = "C")
  | _ -> Alcotest.fail "run failed");
  check "reject" true (Content_automaton.run a (names [ "C" ]) = None)

let test_all_group () =
  (* footnote 2: the all option — elements in any order, each at most once *)
  let g =
    Ast.all_of
      [
        Ast.elem_p (Ast.element "a" (Ast.named_type "xs:string"));
        Ast.elem_p (Ast.element "b" (Ast.named_type "xs:string"));
        Ast.elem_p (Ast.element ~repetition:Ast.optional "c" (Ast.named_type "xs:string"));
      ]
  in
  let a = automaton g in
  check "deterministic" true (Content_automaton.is_deterministic a);
  check "ab" true (Content_automaton.matches a (names [ "a"; "b" ]));
  check "ba" true (Content_automaton.matches a (names [ "b"; "a" ]));
  check "cab" true (Content_automaton.matches a (names [ "c"; "a"; "b" ]));
  check "bca" true (Content_automaton.matches a (names [ "b"; "c"; "a" ]));
  check "missing b" false (Content_automaton.matches a (names [ "a" ]));
  check "duplicate a" false (Content_automaton.matches a (names [ "a"; "a"; "b" ]));
  check "empty" false (Content_automaton.matches a []);
  (* attribution works through any order *)
  (match Content_automaton.run a (names [ "b"; "a" ]) with
  | Some [ d1; d2 ] ->
    check "b decl" true (Name.to_string d1.Ast.elem_name = "b");
    check "a decl" true (Name.to_string d2.Ast.elem_name = "a")
  | _ -> Alcotest.fail "run failed");
  (* optional group *)
  let opt = { g with Ast.group_repetition = Ast.optional } in
  let ao = automaton opt in
  check "optional group, empty" true (Content_automaton.matches ao []);
  check "optional group, full" true (Content_automaton.matches ao (names [ "b"; "a" ]))

let test_all_group_constraints () =
  (* maxOccurs > 1 inside all is rejected *)
  let bad =
    Ast.all_of
      [ Ast.elem_p (Ast.element ~repetition:(Ast.repeat 0 (Some 2)) "a" (Ast.named_type "xs:string")) ]
  in
  check "max>1 rejected" true (Result.is_error (Content_automaton.make bad));
  (* repeated all group is rejected *)
  let bad2 =
    Ast.all_of ~repetition:Ast.many
      [ Ast.elem_p (Ast.element "a" (Ast.named_type "xs:string")) ]
  in
  check "repeated all rejected" true (Result.is_error (Content_automaton.make bad2));
  (* nested all is rejected *)
  let bad3 =
    Ast.sequence
      [ Ast.group_p (Ast.all_of [ Ast.elem_p (Ast.element "a" (Ast.named_type "xs:string")) ]) ]
  in
  check "nested all rejected" true (Result.is_error (Content_automaton.make bad3))

let test_all_group_validation () =
  let g =
    Ast.all_of
      [
        Ast.elem_p (Ast.element "x" (Ast.named_type "xs:string"));
        Ast.elem_p (Ast.element "y" (Ast.named_type "xs:int"));
      ]
  in
  let s = Ast.schema (Ast.element "r" (Ast.Anonymous (Ast.complex (Some g)))) in
  check "schema check ok" true (Result.is_ok (Schema_check.check s));
  let mk kids =
    Tree.document
      (Tree.elem "r"
         ~children:
           (List.map
              (fun (k, v) -> Tree.element (Tree.elem k ~children:[ Tree.text v ]))
              kids))
  in
  let v doc = Validator.validate_document doc s in
  check "xy" true (Result.is_ok (v (mk [ ("x", "a"); ("y", "1") ])));
  check "yx" true (Result.is_ok (v (mk [ ("y", "1"); ("x", "a") ])));
  check "missing y" true (Result.is_error (v (mk [ ("x", "a") ])));
  check "bad y type" true (Result.is_error (v (mk [ ("y", "notint"); ("x", "a") ])))

(* ---------------- backtracking baseline agreement ---------------- *)

let test_backtrack_agreement () =
  let groups =
    [ Samples.example2_group; Samples.example3_group;
      Ast.sequence
        [
          Ast.elem_p (Ast.element ~repetition:(Ast.repeat 0 (Some 2)) "a" (Ast.named_type "xs:string"));
          Ast.elem_p (Ast.element ~repetition:(Ast.repeat 1 (Some 3)) "b" (Ast.named_type "xs:string"));
        ];
    ]
  in
  let alphabet = names [ "a"; "b"; "B"; "C"; "zero"; "one" ] in
  let rec words k =
    if k = 0 then [ [] ]
    else
      let shorter = words (k - 1) in
      shorter @ List.concat_map (fun w -> List.map (fun c -> c :: w) alphabet)
        (List.filter (fun w -> List.length w = k - 1) shorter)
  in
  let all_words = words 4 in
  List.iter
    (fun g ->
      let a = automaton g in
      List.iter
        (fun w ->
          let auto = Content_automaton.matches a w in
          let bt = Backtrack.matches g w in
          if auto <> bt then
            Alcotest.failf "disagreement on %s"
              (String.concat " " (List.map Name.to_string w)))
        all_words)
    groups;
  check "agreed everywhere" true true

let test_backtrack_counts_steps () =
  let g =
    Ast.sequence
      (List.init 8 (fun i ->
           Ast.elem_p
             (Ast.element ~repetition:(Ast.repeat 0 (Some 1)) (Printf.sprintf "e%d" i)
                (Ast.named_type "xs:string"))))
  in
  let _, steps = Backtrack.matches_counting g [] in
  check "steps counted" true (steps > 0)

(* ---------------- validator (§6.2) ---------------- *)

let validate doc schema = Validator.validate_document doc schema

let test_validate_bookstore () =
  check "valid" true (Result.is_ok (validate (Samples.bookstore_document ~books:3 ()) Samples.example7_schema));
  check "invalid" true (Result.is_error (validate (Samples.bookstore_invalid_document ()) Samples.example7_schema))

let test_validate_wrong_root () =
  let doc = Tree.document (Tree.elem "NotABookStore") in
  match validate doc Samples.example7_schema with
  | Error (e :: _) -> check "root error" true (String.length e.Validator.path > 0)
  | _ -> Alcotest.fail "expected rejection"

let test_validate_annotates_types () =
  match validate (Samples.bookstore_document ~books:1 ()) Samples.example7_schema with
  | Error _ -> Alcotest.fail "should validate"
  | Ok (store, dnode) ->
    let module S = Xsm_xdm.Store in
    let root = List.hd (S.children store dnode) in
    (* anonymous type on the root: annotated xs:anyType per item 4 *)
    check "root anon type" true
      (match S.type_name store root with Some n -> n.Name.local = "anyType" | None -> false);
    let book = List.hd (S.children store root) in
    check "named type kept" true
      (match S.type_name store book with
      | Some n -> Name.to_string n = "BookPublication"
      | None -> false);
    let title = List.hd (S.children store book) in
    check "leaf typed" true
      (match S.type_name store title with Some n -> Name.to_string n = "xs:string" | None -> false);
    (* typed value of a simple-typed element *)
    (match S.typed_value store title with
    | [ Xsm_datatypes.Value.String _ ] -> ()
    | _ -> Alcotest.fail "expected a typed string value")

let test_validate_simple_type_value_error () =
  let s =
    Ast.schema (Ast.element "n" (Ast.named_type "xs:int"))
  in
  let mk v = Tree.document (Tree.elem "n" ~children:[ Tree.text v ]) in
  check "42" true (Result.is_ok (validate (mk "42") s));
  check "4.2 rejected" true (Result.is_error (validate (mk "4.2") s));
  check "whitespace collapsed" true (Result.is_ok (validate (mk "  42 ") s))

let test_validate_attribute_types () =
  let ct =
    Ast.complex ~attributes:[ Ast.attribute "n" "xs:int" ]
      (Some (Ast.sequence []))
  in
  let s = Ast.schema (Ast.element "e" (Ast.Anonymous ct)) in
  let mk v = Tree.document (Tree.elem "e" ~attrs:[ Tree.attr "n" v ]) in
  check "int attr" true (Result.is_ok (validate (mk "7") s));
  check "bad attr" true (Result.is_error (validate (mk "x") s));
  (* undeclared attribute *)
  let doc = Tree.document (Tree.elem "e" ~attrs:[ Tree.attr "n" "7"; Tree.attr "zz" "1" ]) in
  check "undeclared" true (Result.is_error (validate doc s))

let test_attribute_use_and_default () =
  let ct use default =
    Ast.complex ~attributes:[ Ast.attribute ~use ?default "n" "xs:int" ] (Some (Ast.sequence []))
  in
  let doc_with = Tree.document (Tree.elem "e" ~attrs:[ Tree.attr "n" "7" ]) in
  let doc_without = Tree.document (Tree.elem "e") in
  let s use default = Ast.schema (Ast.element "e" (Ast.Anonymous (ct use default))) in
  (* required *)
  check "required present" true (Result.is_ok (validate doc_with (s Ast.Required None)));
  check "required absent" true (Result.is_error (validate doc_without (s Ast.Required None)));
  (* optional *)
  check "optional absent ok" true (Result.is_ok (validate doc_without (s Ast.Optional None)));
  check "optional present ok" true (Result.is_ok (validate doc_with (s Ast.Optional None)));
  (* prohibited *)
  check "prohibited present" true (Result.is_error (validate doc_with (s Ast.Prohibited None)));
  check "prohibited absent ok" true (Result.is_ok (validate doc_without (s Ast.Prohibited None)));
  (* default materialization *)
  (match validate doc_without (s Ast.Optional (Some "42")) with
  | Error _ -> Alcotest.fail "default should validate"
  | Ok (store, dnode) ->
    let e = List.hd (Xsm_xdm.Store.children store dnode) in
    (match Xsm_xdm.Store.attributes store e with
    | [ a ] ->
      check "default value" true (Xsm_xdm.Store.string_value store a = "42");
      (match Xsm_xdm.Store.typed_value store a with
      | [ Xsm_datatypes.Value.Decimal _ ] -> ()
      | _ -> Alcotest.fail "default should be typed")
    | _ -> Alcotest.fail "expected the defaulted attribute"));
  (* explicit value beats default *)
  (match validate doc_with (s Ast.Optional (Some "42")) with
  | Error _ -> Alcotest.fail "should validate"
  | Ok (store, dnode) ->
    let e = List.hd (Xsm_xdm.Store.children store dnode) in
    check "explicit kept" true
      (Xsm_xdm.Store.string_value store (List.hd (Xsm_xdm.Store.attributes store e)) = "7"));
  (* a default that does not fit the type is an error *)
  check "bad default" true (Result.is_error (validate doc_without (s Ast.Optional (Some "x"))))

let test_validate_empty_content () =
  let s = Ast.schema (Ast.element "e" (Ast.Anonymous (Ast.complex None))) in
  check "empty ok" true (Result.is_ok (validate (Tree.document (Tree.elem "e")) s));
  check "element child rejected" true
    (Result.is_error
       (validate (Tree.document (Tree.elem "e" ~children:[ Tree.element (Tree.elem "x") ])) s));
  check "text rejected (not mixed)" true
    (Result.is_error (validate (Tree.document (Tree.elem "e" ~children:[ Tree.text "hi" ])) s));
  (* whitespace tolerated *)
  check "whitespace ok" true
    (Result.is_ok (validate (Tree.document (Tree.elem "e" ~children:[ Tree.text "  \n " ])) s))

let test_validate_mixed_empty () =
  let s = Ast.schema (Ast.element "e" (Ast.Anonymous (Ast.complex ~mixed:true None))) in
  check "one text ok" true
    (Result.is_ok (validate (Tree.document (Tree.elem "e" ~children:[ Tree.text "hi" ])) s))

let test_validate_choice_content () =
  let s = Ast.schema (Ast.element "r" (Ast.Anonymous (Ast.complex (Some Samples.example3_group)))) in
  let mk kids = Tree.document (Tree.elem "r" ~children:(List.map (fun k -> Tree.element (Tree.elem k ~children:[Tree.text "v"])) kids)) in
  check "empty" true (Result.is_ok (validate (mk []) s));
  check "zeros and ones" true (Result.is_ok (validate (mk [ "zero"; "one"; "zero" ]) s));
  check "foreign" true (Result.is_error (validate (mk [ "two" ]) s))

let test_validate_group_repetition () =
  (* the group B C repeated 2..3 times *)
  let g = { Samples.example2_group with Ast.group_repetition = Ast.repeat 2 (Some 3) } in
  let s = Ast.schema (Ast.element "r" (Ast.Anonymous (Ast.complex (Some g)))) in
  let mk n =
    Tree.document
      (Tree.elem "r"
         ~children:
           (List.concat
              (List.init n (fun _ ->
                   [ Tree.element (Tree.elem "B" ~children:[Tree.text "b"]);
                     Tree.element (Tree.elem "C" ~children:[Tree.text "c"]) ]))))
  in
  check "once too few" true (Result.is_error (validate (mk 1) s));
  check "twice" true (Result.is_ok (validate (mk 2) s));
  check "thrice" true (Result.is_ok (validate (mk 3) s));
  check "four too many" true (Result.is_error (validate (mk 4) s))

let test_validate_existing_store_tree () =
  (* validate works on trees built directly in the algebra too *)
  let module S = Xsm_xdm.Store in
  let store = S.create () in
  let d = S.new_document store in
  let e = S.new_element store (Name.local "n") in
  S.append_child store d e;
  S.append_child store e (S.new_text store "42");
  let schema = Ast.schema (Ast.element "n" (Ast.named_type "xs:int")) in
  check "store tree valid" true (Result.is_ok (Validator.validate store d schema));
  check "element entry point" true
    (Result.is_ok (Validator.validate_element_node store e schema))

let test_error_paths () =
  match validate (Samples.bookstore_invalid_document ()) Samples.example7_schema with
  | Error (e :: _) ->
    check "path names the book" true
      (e.Validator.path = "/BookStore/Book[1]")
  | _ -> Alcotest.fail "expected a located error"

let test_recursive_schema_validation () =
  (* type NodeT = sequence of zero or more NodeT children: deep
     instances validate and annotate correctly *)
  let node_type =
    Ast.complex
      (Some (Ast.sequence [ Ast.elem_p (Ast.element ~repetition:Ast.many "child" (Ast.named_type "NodeT")) ]))
  in
  let s =
    Ast.schema ~complex_types:[ ("NodeT", node_type) ]
      (Ast.element "root" (Ast.named_type "NodeT"))
  in
  let rec nest k =
    if k = 0 then Tree.elem "child"
    else Tree.elem "child" ~children:[ Tree.element (nest (k - 1)) ]
  in
  let doc depth =
    Tree.document (Tree.elem "root" ~children:[ Tree.element (nest depth) ])
  in
  check "depth 50" true (Result.is_ok (validate (doc 50) s));
  check "depth 500" true (Result.is_ok (validate (doc 500) s));
  (* a wrong leaf name at the bottom is caught *)
  let rec bad k =
    if k = 0 then Tree.elem "leafy"
    else Tree.elem "child" ~children:[ Tree.element (bad (k - 1)) ]
  in
  check "deep error caught" true
    (Result.is_error (validate (Tree.document (Tree.elem "root" ~children:[ Tree.element (bad 50) ])) s))

let test_all_duplicate_names_rejected () =
  let g =
    Ast.all_of
      [
        Ast.elem_p (Ast.element "a" (Ast.named_type "xs:string"));
        Ast.elem_p (Ast.element "a" (Ast.named_type "xs:int"));
      ]
  in
  let s = Ast.schema (Ast.element "r" (Ast.Anonymous (Ast.complex (Some g)))) in
  check "duplicate names in all" true (Result.is_error (Schema_check.check s))

(* ---------------- canonicalization ---------------- *)

let test_canonical_flatten () =
  (* a (b c) d  ==  a b c d *)
  let el n = Ast.elem_p (Ast.element n (Ast.named_type "xs:string")) in
  let nested = Ast.sequence [ el "a"; Ast.group_p (Ast.sequence [ el "b"; el "c" ]); el "d" ] in
  let flat = Canonical.simplify_group nested in
  check_int "flattened size" 4 (Canonical.group_size flat);
  check "equivalent" true (Canonical.equivalent_groups nested flat = Ok true)

let test_canonical_drop_zero () =
  let el ?repetition n = Ast.elem_p (Ast.element ?repetition n (Ast.named_type "xs:string")) in
  let g = Ast.sequence [ el "a"; el ~repetition:(Ast.repeat 0 (Some 0)) "never"; el "b" ] in
  let s = Canonical.simplify_group g in
  check_int "dropped" 2 (Canonical.group_size s);
  check "equivalent" true (Canonical.equivalent_groups g s = Ok true)

let test_canonical_unwrap_single () =
  (* ((e{1,2}){0,unbounded}) == e{0,unbounded} up to language *)
  let inner =
    Ast.sequence [ Ast.elem_p (Ast.element ~repetition:(Ast.repeat 1 (Some 2)) "e" (Ast.named_type "xs:string")) ]
  in
  let outer = Ast.sequence ~repetition:Ast.many [ Ast.group_p inner ] in
  let s = Canonical.simplify_group outer in
  check "equivalent" true (Canonical.equivalent_groups outer s = Ok true);
  check_int "single particle" 1 (Canonical.group_size s)

let test_canonical_dedup_choice () =
  let el n = Ast.elem_p (Ast.element n (Ast.named_type "xs:string")) in
  let g = Ast.choice [ el "a"; el "b"; el "a" ] in
  let s = Canonical.simplify_group g in
  check_int "deduped" 2 (Canonical.group_size s);
  check "equivalent" true (Canonical.equivalent_groups g s = Ok true)

let test_canonical_schema_preserves_validation () =
  let schema = Samples.example7_schema in
  let simplified = Canonical.simplify_schema schema in
  let rng = Generator.rng 55 in
  for _ = 1 to 20 do
    let doc = Generator.instance rng schema in
    check "same verdict" true
      (Validator.is_valid doc schema = Validator.is_valid doc simplified)
  done;
  check "invalid still invalid" true
    (not (Validator.is_valid (Samples.bookstore_invalid_document ()) simplified))

let test_equivalence_distinguishes () =
  let el n = Ast.elem_p (Ast.element n (Ast.named_type "xs:string")) in
  let ab = Ast.sequence [ el "a"; el "b" ] in
  let ba = Ast.sequence [ el "b"; el "a" ] in
  let choice_ab = Ast.choice [ Ast.group_p ab; Ast.group_p ba ] in
  let all_ab = Ast.all_of [ el "a"; el "b" ] in
  check "ab <> ba" true (Canonical.equivalent_groups ab ba = Ok false);
  check "ab = ab" true (Canonical.equivalent_groups ab ab = Ok true);
  (* all{a,b} = (a b | b a): interleave vs glushkov equivalence *)
  check "all = both orders" true (Canonical.equivalent_groups all_ab choice_ab = Ok true);
  check "all <> ab" true (Canonical.equivalent_groups all_ab ab = Ok false)

(* ---------------- roundtrip (§8) ---------------- *)

let test_roundtrip_examples () =
  List.iter
    (fun (doc, schema) ->
      match Roundtrip.holds_for doc schema with
      | Ok true -> ()
      | Ok false -> Alcotest.fail "g(f(X)) differed from X"
      | Error es ->
        Alcotest.failf "not an S-document: %s"
          (String.concat "; " (List.map Validator.error_to_string es)))
    [
      (Samples.bookstore_document ~books:4 (), Samples.example7_schema);
      (Samples.example8_document, Samples.library_schema);
      (Samples.library_document ~books:10 ~papers:5 (), Samples.library_schema);
    ]

let test_roundtrip_rejects_invalid () =
  match Roundtrip.holds_for (Samples.bookstore_invalid_document ()) Samples.example7_schema with
  | Error _ -> ()
  | Ok _ -> Alcotest.fail "hypothesis should fail"

let test_roundtrip_text () =
  let text =
    Xsm_xml.Printer.to_string (Samples.bookstore_document ~books:2 ())
  in
  match Roundtrip.text_roundtrip text Samples.example7_schema with
  | Ok true -> ()
  | Ok false -> Alcotest.fail "text roundtrip differed"
  | Error e -> Alcotest.fail e

(* ---------------- generator ---------------- *)

let test_generator_instances_valid () =
  let rng = Generator.rng 123 in
  for _ = 1 to 25 do
    let doc = Generator.instance rng Samples.example7_schema in
    match validate doc Samples.example7_schema with
    | Ok _ -> ()
    | Error es ->
      Alcotest.failf "generated instance invalid: %s"
        (String.concat "; " (List.map Validator.error_to_string es))
  done

let test_generator_random_schemas_wellformed () =
  let rng = Generator.rng 99 in
  for _ = 1 to 15 do
    let s = Generator.random_schema rng in
    (match Schema_check.check s with
    | Ok () -> ()
    | Error es ->
      Alcotest.failf "random schema ill-formed: %s"
        (String.concat "; "
           (List.map (fun e -> Format.asprintf "%a" Schema_check.pp_error e) es)));
    let doc = Generator.instance rng s in
    match validate doc s with
    | Ok _ -> ()
    | Error es ->
      Alcotest.failf "instance of random schema invalid: %s"
        (String.concat "; " (List.map Validator.error_to_string es))
  done

let test_generator_deterministic () =
  let s1 = Generator.random_schema (Generator.rng 5) in
  let s2 = Generator.random_schema (Generator.rng 5) in
  let d1 = Generator.instance (Generator.rng 6) s1 in
  let d2 = Generator.instance (Generator.rng 6) s2 in
  check "same seed, same doc" true (Tree.equal_content d1 d2)

let test_sample_values_valid () =
  let rng = Generator.rng 31 in
  let types =
    List.filter Xsm_datatypes.Builtin.is_simple Xsm_datatypes.Builtin.all
  in
  List.iter
    (fun b ->
      let st = Xsm_datatypes.Simple_type.builtin b in
      for _ = 1 to 5 do
        let v = Generator.sample_value rng st in
        if not (Xsm_datatypes.Simple_type.is_valid st v) then
          Alcotest.failf "sample %S invalid for %s" v (Xsm_datatypes.Builtin.name b)
      done)
    types

let suite =
  [
    ( "schema.ast",
      [
        Alcotest.test_case "repetition" `Quick test_repetition;
        Alcotest.test_case "group observers" `Quick test_group_observers;
      ] );
    ( "schema.check",
      [
        Alcotest.test_case "paper examples" `Quick test_check_example_schemas;
        Alcotest.test_case "unknown type" `Quick test_check_unknown_type;
        Alcotest.test_case "duplicate names" `Quick test_check_duplicate_names_in_group;
        Alcotest.test_case "UPA violation" `Quick test_check_upa_violation;
        Alcotest.test_case "duplicate attributes" `Quick test_check_duplicate_attributes;
        Alcotest.test_case "recursive schema" `Quick test_check_recursive_schema_terminates;
        Alcotest.test_case "resolve" `Quick test_resolve;
      ] );
    ( "schema.automaton",
      [
        Alcotest.test_case "sequence" `Quick test_automaton_sequence;
        Alcotest.test_case "choice*" `Quick test_automaton_choice_star;
        Alcotest.test_case "bounded" `Quick test_automaton_bounded;
        Alcotest.test_case "large bound" `Quick test_automaton_large_bound;
        Alcotest.test_case "too large" `Quick test_automaton_too_large;
        Alcotest.test_case "nested groups" `Quick test_automaton_nested_groups;
        Alcotest.test_case "determinism" `Quick test_automaton_determinism_flag;
        Alcotest.test_case "attribution" `Quick test_automaton_run_attribution;
        Alcotest.test_case "all group" `Quick test_all_group;
        Alcotest.test_case "all constraints" `Quick test_all_group_constraints;
        Alcotest.test_case "all validation" `Quick test_all_group_validation;
      ] );
    ( "schema.backtrack",
      [
        Alcotest.test_case "agreement" `Quick test_backtrack_agreement;
        Alcotest.test_case "step counter" `Quick test_backtrack_counts_steps;
      ] );
    ( "schema.validator",
      [
        Alcotest.test_case "bookstore" `Quick test_validate_bookstore;
        Alcotest.test_case "wrong root" `Quick test_validate_wrong_root;
        Alcotest.test_case "type annotation" `Quick test_validate_annotates_types;
        Alcotest.test_case "simple values" `Quick test_validate_simple_type_value_error;
        Alcotest.test_case "attributes" `Quick test_validate_attribute_types;
        Alcotest.test_case "attribute use/default" `Quick test_attribute_use_and_default;
        Alcotest.test_case "empty content" `Quick test_validate_empty_content;
        Alcotest.test_case "mixed empty" `Quick test_validate_mixed_empty;
        Alcotest.test_case "choice content" `Quick test_validate_choice_content;
        Alcotest.test_case "group repetition" `Quick test_validate_group_repetition;
        Alcotest.test_case "store trees" `Quick test_validate_existing_store_tree;
        Alcotest.test_case "recursive schemas" `Quick test_recursive_schema_validation;
        Alcotest.test_case "all duplicate names" `Quick test_all_duplicate_names_rejected;
        Alcotest.test_case "error paths" `Quick test_error_paths;
      ] );
    ( "schema.canonical",
      [
        Alcotest.test_case "flatten" `Quick test_canonical_flatten;
        Alcotest.test_case "drop zero" `Quick test_canonical_drop_zero;
        Alcotest.test_case "unwrap single" `Quick test_canonical_unwrap_single;
        Alcotest.test_case "dedup choice" `Quick test_canonical_dedup_choice;
        Alcotest.test_case "schema preserved" `Quick test_canonical_schema_preserves_validation;
        Alcotest.test_case "equivalence" `Quick test_equivalence_distinguishes;
      ] );
    ( "schema.roundtrip",
      [
        Alcotest.test_case "paper examples" `Quick test_roundtrip_examples;
        Alcotest.test_case "invalid rejected" `Quick test_roundtrip_rejects_invalid;
        Alcotest.test_case "from text" `Quick test_roundtrip_text;
      ] );
    ( "schema.generator",
      [
        Alcotest.test_case "instances valid" `Quick test_generator_instances_valid;
        Alcotest.test_case "random schemas" `Quick test_generator_random_schemas_wellformed;
        Alcotest.test_case "deterministic" `Quick test_generator_deterministic;
        Alcotest.test_case "sample values" `Quick test_sample_values_valid;
      ] );
  ]
