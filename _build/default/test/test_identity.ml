(* Tests for xsm_identity: unique / key / keyref over validated
   documents, plus the XSD syntax for them. *)

module Store = Xsm_xdm.Store
module Tree = Xsm_xml.Tree
module C = Xsm_identity.Constraint_def
open Xsm_schema

let check = Alcotest.(check bool)
let check_int = Alcotest.(check int)

let bookstore_with_isbns isbns =
  let book i isbn =
    Tree.element
      (Tree.elem "Book"
         ~children:
           (List.map
              (fun (tag, v) -> Tree.element (Tree.elem tag ~children:[ Tree.text v ]))
              [
                ("Title", Printf.sprintf "T%d" i); ("Author", "A"); ("Date", "2004");
                ("ISBN", isbn); ("Publisher", "P");
              ]))
  in
  Tree.document (Tree.elem "BookStore" ~children:(List.mapi book isbns))

let validated doc =
  match Validator.validate_document doc Samples.example7_schema with
  | Ok (store, dnode) -> (store, dnode)
  | Error _ -> Alcotest.fail "fixture should validate"

let isbn_key = C.key ~name:"isbnKey" ~context:"BookStore" ~selector:"Book" [ "ISBN" ]

let isbn_unique =
  C.unique ~name:"isbnUnique" ~context:"BookStore" ~selector:"Book" [ "ISBN" ]

let test_key_satisfied () =
  let store, dnode = validated (bookstore_with_isbns [ "i1"; "i2"; "i3" ]) in
  check "ok" true (C.check store dnode [ isbn_key ] = Ok ())

let test_key_duplicate () =
  let store, dnode = validated (bookstore_with_isbns [ "i1"; "i2"; "i1" ]) in
  match C.check store dnode [ isbn_key ] with
  | Error [ v ] ->
    check "names constraint" true (v.C.constraint_name = "isbnKey");
    check "mentions duplicate" true
      (String.length v.C.message > 0)
  | Error vs -> Alcotest.failf "expected one violation, got %d" (List.length vs)
  | Ok () -> Alcotest.fail "duplicate key accepted"

let test_unique_allows_absent_fields () =
  (* unique: tuples with absent fields are simply skipped; key: error.
     Build a doc where one Book has an empty-ISBN sibling... the schema
     requires ISBN, so instead use a constraint on an optional field *)
  let store, dnode = validated (bookstore_with_isbns [ "i1"; "i2" ]) in
  let on_missing =
    C.unique ~name:"u" ~context:"BookStore" ~selector:"Book" [ "NoSuchChild" ]
  in
  check "unique skips incomplete" true (C.check store dnode [ on_missing ] = Ok ());
  let key_missing = C.key ~name:"k" ~context:"BookStore" ~selector:"Book" [ "NoSuchChild" ] in
  check "key requires fields" true (Result.is_error (C.check store dnode [ key_missing ]))

let test_typed_comparison () =
  (* int-typed fields compare by value: 01 = 1 *)
  let schema =
    Ast.schema
      (Ast.element "r"
         (Ast.Anonymous
            (Ast.complex
               (Some
                  (Ast.sequence
                     [
                       Ast.elem_p
                         (Ast.element ~repetition:Ast.many "item"
                            (Ast.Anonymous
                               (Ast.complex
                                  ~attributes:[ Ast.attribute "id" "xs:int" ]
                                  (Some (Ast.sequence [])))));
                     ])))))
  in
  let doc ids =
    Tree.document
      (Tree.elem "r"
         ~children:
           (List.map
              (fun id -> Tree.element (Tree.elem "item" ~attrs:[ Tree.attr "id" id ]))
              ids))
  in
  let idkey = C.key ~name:"id" ~context:"r" ~selector:"item" [ "@id" ] in
  let run ids =
    match Validator.validate_document (doc ids) schema with
    | Ok (store, dnode) -> C.check store dnode [ idkey ]
    | Error _ -> Alcotest.fail "fixture"
  in
  check "1 and 2 distinct" true (run [ "1"; "2" ] = Ok ());
  check "01 equals 1 by typed value" true (Result.is_error (run [ "01"; "1" ]))

let test_keyref () =
  (* a library where citations refer to book isbns *)
  let schema =
    Ast.schema
      (Ast.element "lib"
         (Ast.Anonymous
            (Ast.complex
               (Some
                  (Ast.sequence
                     [
                       Ast.elem_p
                         (Ast.element ~repetition:Ast.many "book"
                            (Ast.Anonymous
                               (Ast.complex
                                  ~attributes:[ Ast.attribute "isbn" "xs:string" ]
                                  (Some (Ast.sequence [])))));
                       Ast.elem_p
                         (Ast.element ~repetition:Ast.many "cite"
                            (Ast.Anonymous
                               (Ast.complex
                                  ~attributes:[ Ast.attribute "ref" "xs:string" ]
                                  (Some (Ast.sequence [])))));
                     ])))))
  in
  let doc books cites =
    Tree.document
      (Tree.elem "lib"
         ~children:
           (List.map
              (fun i -> Tree.element (Tree.elem "book" ~attrs:[ Tree.attr "isbn" i ]))
              books
           @ List.map
               (fun r -> Tree.element (Tree.elem "cite" ~attrs:[ Tree.attr "ref" r ]))
               cites))
  in
  let defs =
    [
      C.key ~name:"bookKey" ~context:"lib" ~selector:"book" [ "@isbn" ];
      C.keyref ~name:"citeRef" ~context:"lib" ~refer:"bookKey" ~selector:"cite" [ "@ref" ];
    ]
  in
  let run books cites =
    match Validator.validate_document (doc books cites) schema with
    | Ok (store, dnode) -> C.check store dnode defs
    | Error _ -> Alcotest.fail "fixture"
  in
  check "resolved refs" true (run [ "a"; "b" ] [ "a"; "b"; "a" ] = Ok ());
  (match run [ "a" ] [ "a"; "zz" ] with
  | Error [ v ] -> check "dangling named" true (v.C.constraint_name = "citeRef")
  | _ -> Alcotest.fail "expected one dangling-reference violation");
  (* unknown key name *)
  let bad = [ C.keyref ~name:"r" ~context:"lib" ~refer:"nope" ~selector:"cite" [ "@ref" ] ] in
  check "unknown key" true (Result.is_error (run [ "a" ] [] |> fun _ ->
    match Validator.validate_document (doc ["a"] []) schema with
    | Ok (store, dnode) -> C.check store dnode bad
    | Error _ -> Ok ()))

let test_multi_field_tuples () =
  (* key over (Title, Date) pairs *)
  let mk titles_dates =
    let book (t, d) =
      Tree.element
        (Tree.elem "Book"
           ~children:
             (List.map
                (fun (tag, v) -> Tree.element (Tree.elem tag ~children:[ Tree.text v ]))
                [ ("Title", t); ("Author", "A"); ("Date", d); ("ISBN", "x"); ("Publisher", "P") ]))
    in
    Tree.document (Tree.elem "BookStore" ~children:(List.map book titles_dates))
  in
  let k = C.key ~name:"td" ~context:"BookStore" ~selector:"Book" [ "Title"; "Date" ] in
  let run tds =
    let store, dnode = validated (mk tds) in
    C.check store dnode [ k ]
  in
  check "distinct pairs" true (run [ ("t", "1990"); ("t", "1991") ] = Ok ());
  check "same pair rejected" true (Result.is_error (run [ ("t", "1990"); ("t", "1990") ]))

let test_field_multiplicity_error () =
  (* a field that selects several nodes is a violation *)
  let store, dnode = validated (bookstore_with_isbns [ "i1" ]) in
  let bad = C.key ~name:"k" ~context:"BookStore" ~selector:"Book" [ "*" ] in
  check "multi-node field rejected" true (Result.is_error (C.check store dnode [ bad ]))

(* ---------------- XSD syntax ---------------- *)

let test_xsd_constraint_syntax () =
  let text =
    {|<xsd:schema xmlns:xsd="http://www.w3.org/2001/XMLSchema">
       <xsd:element name="BookStore">
         <xsd:complexType>
           <xsd:sequence>
             <xsd:element name="Book" type="xsd:string" maxOccurs="unbounded"/>
           </xsd:sequence>
         </xsd:complexType>
         <xsd:key name="isbnKey">
           <xsd:selector xpath="Book"/>
           <xsd:field xpath="@isbn"/>
         </xsd:key>
         <xsd:keyref name="refs" refer="isbnKey">
           <xsd:selector xpath="Cite"/>
           <xsd:field xpath="@ref"/>
         </xsd:keyref>
         <xsd:unique name="titles">
           <xsd:selector xpath="Book"/>
           <xsd:field xpath="Title"/>
           <xsd:field xpath="Date"/>
         </xsd:unique>
       </xsd:element>
     </xsd:schema>|}
  in
  match Xsm_xsd.Reader.constraints_of_string text with
  | Error e -> Alcotest.fail (Xsm_xsd.Reader.error_to_string e)
  | Ok defs ->
    check_int "three constraints" 3 (List.length defs);
    (match defs with
    | [ k; r; u ] ->
      check "key" true (k.C.kind = C.Key && k.C.name = "isbnKey");
      check "keyref" true (r.C.kind = C.Keyref "isbnKey");
      check "unique fields" true (u.C.kind = C.Unique && List.length u.C.fields = 2);
      check "context" true (Xsm_xml.Name.to_string k.C.context = "BookStore")
    | _ -> Alcotest.fail "unexpected shape")

let test_xsd_constraint_errors () =
  let bad sel =
    Printf.sprintf
      {|<xsd:schema xmlns:xsd="http://www.w3.org/2001/XMLSchema">
         <xsd:element name="r" type="xsd:string">
           <xsd:key name="k">%s<xsd:field xpath="@x"/></xsd:key>
         </xsd:element>
       </xsd:schema>|}
      sel
  in
  check "missing selector" true
    (Result.is_error (Xsm_xsd.Reader.constraints_of_string (bad "")));
  check "fine with selector" true
    (Result.is_ok (Xsm_xsd.Reader.constraints_of_string (bad {|<xsd:selector xpath="a"/>|})))

let suite =
  [
    ( "identity.constraints",
      [
        Alcotest.test_case "key satisfied" `Quick test_key_satisfied;
        Alcotest.test_case "key duplicate" `Quick test_key_duplicate;
        Alcotest.test_case "unique vs key on absent" `Quick test_unique_allows_absent_fields;
        Alcotest.test_case "typed comparison" `Quick test_typed_comparison;
        Alcotest.test_case "keyref" `Quick test_keyref;
        Alcotest.test_case "multi-field tuples" `Quick test_multi_field_tuples;
        Alcotest.test_case "field multiplicity" `Quick test_field_multiplicity_error;
      ] );
    ( "identity.xsd-syntax",
      [
        Alcotest.test_case "read constraints" `Quick test_xsd_constraint_syntax;
        Alcotest.test_case "syntax errors" `Quick test_xsd_constraint_errors;
      ] );
  ]
