(* Tests for xsm_xdm: the state algebra (§5/§6.1 accessor rules),
   document order (§7), axes, and XML <-> store conversion. *)

module Store = Xsm_xdm.Store
module Order = Xsm_xdm.Order
module Axis = Xsm_xdm.Axis
module Convert = Xsm_xdm.Convert
module Name = Xsm_xml.Name
module Tree = Xsm_xml.Tree

let check = Alcotest.(check bool)
let check_int = Alcotest.(check int)
let check_str = Alcotest.(check string)

(* build the Example 8-ish fixture:
   doc -> library -> book(title, author, author), paper(title @kind) *)
let fixture () =
  let s = Store.create () in
  let d = Store.new_document ~base_uri:"http://x" s in
  let lib = Store.new_element s (Name.local "library") in
  Store.append_child s d lib;
  let book = Store.new_element s (Name.local "book") in
  Store.append_child s lib book;
  let title = Store.new_element s (Name.local "title") in
  Store.append_child s book title;
  Store.append_child s title (Store.new_text s "Foundations");
  let a1 = Store.new_element s (Name.local "author") in
  Store.append_child s book a1;
  Store.append_child s a1 (Store.new_text s "Abiteboul");
  let a2 = Store.new_element s (Name.local "author") in
  Store.append_child s book a2;
  Store.append_child s a2 (Store.new_text s "Hull");
  let paper = Store.new_element s (Name.local "paper") in
  Store.append_child s lib paper;
  let kind = Store.new_attribute s (Name.local "kind") "journal" in
  Store.attach_attribute s paper kind;
  let ptitle = Store.new_element s (Name.local "title") in
  Store.append_child s paper ptitle;
  Store.append_child s ptitle (Store.new_text s "Relational Model");
  (s, d, lib, book, paper, kind)

(* ---------------- §6.1 fixed accessor values ---------------- *)

let test_document_accessors () =
  let s, d, _, _, _, _ = fixture () in
  check_str "node-kind" "document" (Store.node_kind s d);
  check "node-name empty" true (Store.node_name s d = None);
  check "parent empty" true (Store.parent s d = None);
  check "type empty" true (Store.type_name s d = None);
  check "attributes empty" true (Store.attributes s d = []);
  check "nilled empty" true (Store.nilled s d = None);
  check "base-uri" true (Store.base_uri s d = Some "http://x")

let test_element_accessors () =
  let s, _, lib, book, _, _ = fixture () in
  check_str "node-kind" "element" (Store.node_kind s lib);
  check "name" true (Store.node_name s lib = Some (Name.local "library"));
  check "children count" true (List.length (Store.children s lib) = 2);
  check "parent of book" true (Store.parent s book = Some lib);
  (* untyped elements carry xs:anyType *)
  check "type" true
    (match Store.type_name s book with Some n -> n.Name.local = "anyType" | None -> false);
  check "base-uri inherited" true (Store.base_uri s book = Some "http://x")

let test_attribute_accessors () =
  let s, _, _, _, paper, kind = fixture () in
  check_str "node-kind" "attribute" (Store.node_kind s kind);
  check "children empty" true (Store.children s kind = []);
  check "attributes empty" true (Store.attributes s kind = []);
  check "nilled empty" true (Store.nilled s kind = None);
  check "parent" true (Store.parent s kind = Some paper);
  check_str "string-value" "journal" (Store.string_value s kind)

let test_text_accessors () =
  let s, _, _, book, _, _ = fixture () in
  let title = List.hd (Store.children s book) in
  let text = List.hd (Store.children s title) in
  check_str "node-kind" "text" (Store.node_kind s text);
  check "node-name empty" true (Store.node_name s text = None);
  check "type untypedAtomic" true
    (match Store.type_name s text with Some n -> n.Name.local = "untypedAtomic" | None -> false)

let test_string_value_concat () =
  let s, d, lib, book, _, _ = fixture () in
  check_str "book" "FoundationsAbiteboulHull" (Store.string_value s book);
  check_str "library" "FoundationsAbiteboulHullRelational Model" (Store.string_value s lib);
  (* requirement 1: string value of document = string value of its child *)
  check_str "document" (Store.string_value s lib) (Store.string_value s d)

let test_typed_value_untyped () =
  let s, _, _, book, _, _ = fixture () in
  match Store.typed_value s book with
  | [ Xsm_datatypes.Value.Untyped_atomic v ] -> check_str "wraps string value" "FoundationsAbiteboulHull" v
  | _ -> Alcotest.fail "expected untypedAtomic"

(* ---------------- shape constraints ---------------- *)

let expect_invalid_arg f =
  match f () with
  | exception Invalid_argument _ -> ()
  | _ -> Alcotest.fail "expected Invalid_argument"

let test_shape_constraints () =
  let s = Store.create () in
  let d = Store.new_document s in
  let e1 = Store.new_element s (Name.local "a") in
  let e2 = Store.new_element s (Name.local "b") in
  Store.append_child s d e1;
  (* a document has exactly one element child *)
  expect_invalid_arg (fun () -> Store.append_child s d e2);
  (* no text under document *)
  let t = Store.new_text s "x" in
  expect_invalid_arg (fun () -> Store.append_child s d t);
  (* attributes attach, not append *)
  let at = Store.new_attribute s (Name.local "k") "v" in
  expect_invalid_arg (fun () -> Store.append_child s e1 at);
  Store.attach_attribute s e1 at;
  (* duplicate attribute names rejected *)
  let at2 = Store.new_attribute s (Name.local "k") "w" in
  expect_invalid_arg (fun () -> Store.attach_attribute s e1 at2);
  (* re-parenting is rejected *)
  expect_invalid_arg (fun () -> Store.append_child s e2 e1);
  (* text/attribute nodes have no children *)
  Store.append_child s e1 t;
  expect_invalid_arg (fun () -> Store.append_child s t (Store.new_text s "y"))

let test_carriers_disjoint () =
  let s, _, _, _, _, _ = fixture () in
  let total =
    Store.count_kind s Store.Kind.Document
    + Store.count_kind s Store.Kind.Element
    + Store.count_kind s Store.Kind.Attribute
    + Store.count_kind s Store.Kind.Text
  in
  check_int "A_Node is the disjoint union" (Store.node_count s) total

let test_insert_remove_child () =
  let s, _, lib, book, paper, _ = fixture () in
  let extra = Store.new_element s (Name.local "cd") in
  Store.insert_child_before s lib ~before:paper extra;
  (match Store.children s lib with
  | [ a; b; c ] ->
    check "order after insert" true
      (Store.equal_node a book && Store.equal_node b extra && Store.equal_node c paper)
  | _ -> Alcotest.fail "expected three children");
  Store.remove_child s lib extra;
  check_int "removed" 2 (List.length (Store.children s lib));
  check "unparented" true (Store.parent s extra = None)

(* ---------------- document order (§7) ---------------- *)

let test_order_rules () =
  let s, d, lib, book, paper, kind = fixture () in
  (* document node first *)
  check "doc << library" true (Order.precedes s d lib);
  (* element before its attributes *)
  check "paper << @kind" true (Order.precedes s paper kind);
  (* attributes before children *)
  let ptitle = List.hd (Store.children s paper) in
  check "@kind << title" true (Order.precedes s kind ptitle);
  (* subtree of earlier sibling precedes later sibling *)
  let hull_text = Store.string_value s in
  ignore hull_text;
  check "book subtree << paper" true
    (List.for_all
       (fun n -> Order.precedes s n paper)
       (Store.descendants_or_self s book))

let test_order_total_and_consistent () =
  let s, d, _, _, _, _ = fixture () in
  let nodes = Store.descendants_or_self s d in
  (* descendants_or_self is exactly document order *)
  let sorted = List.sort (Order.compare s) nodes in
  check "pre-order = document order" true
    (List.equal Store.equal_node nodes sorted);
  (* totality: all pairs comparable with antisymmetry *)
  List.iter
    (fun a ->
      List.iter
        (fun b ->
          let ab = Order.compare s a b and ba = Order.compare s b a in
          check "antisymmetric" true (compare ab 0 = -compare ba 0);
          if Store.equal_node a b then check_int "reflexive" 0 ab)
        nodes)
    nodes

let test_order_different_trees_rejected () =
  let s = Store.create () in
  let d1 = Store.new_document s and d2 = Store.new_document s in
  match Order.compare s d1 d2 with
  | exception Invalid_argument _ -> ()
  | _ -> Alcotest.fail "expected Invalid_argument"

let test_index_in_parent () =
  let s, _, lib, book, paper, kind = fixture () in
  ignore lib;
  Alcotest.(check (option int)) "book" (Some 0) (Order.index_in_parent s book);
  Alcotest.(check (option int)) "paper" (Some 1) (Order.index_in_parent s paper);
  Alcotest.(check (option int)) "attribute has none" None (Order.index_in_parent s kind)

(* ---------------- axes ---------------- *)

let test_axes () =
  let s, d, lib, book, paper, kind = fixture () in
  let names axis n =
    List.filter_map
      (fun m -> Option.map Name.to_string (Store.node_name s m))
      (Axis.apply s axis n)
  in
  Alcotest.(check (list string)) "child" [ "book"; "paper" ] (names Axis.Child lib);
  Alcotest.(check (list string)) "attribute" [ "kind" ] (names Axis.Attribute paper);
  Alcotest.(check (list string)) "ancestor" [ "library" ]
    (List.filter_map (fun m -> Option.map Name.to_string (Store.node_name s m))
       (Axis.apply s Axis.Ancestor book));
  check_int "descendants of lib" 10 (List.length (Axis.apply s Axis.Descendant lib));
  Alcotest.(check (list string)) "following-sibling of book" [ "paper" ]
    (names Axis.Following_sibling book);
  Alcotest.(check (list string)) "preceding-sibling of paper" [ "book" ]
    (names Axis.Preceding_sibling book |> fun _ -> names Axis.Preceding_sibling paper);
  check "self" true
    (match Axis.apply s Axis.Self book with [ n ] -> Store.equal_node n book | _ -> false);
  check "parent of root is document" true
    (match Axis.apply s Axis.Parent lib with [ n ] -> Store.equal_node n d | _ -> false);
  (* following: nodes after book's subtree, excluding descendants *)
  let following = Axis.apply s Axis.Following book in
  check "following contains paper" true (List.exists (Store.equal_node paper) following);
  check "following excludes own text" true
    (List.for_all (fun n -> not (Order.is_ancestor s book n)) following);
  (* preceding excludes ancestors *)
  let preceding = Axis.apply s Axis.Preceding paper in
  check "preceding excludes library" true
    (not (List.exists (Store.equal_node lib) preceding));
  check "preceding contains book" true (List.exists (Store.equal_node book) preceding);
  ignore kind

let test_axis_names () =
  List.iter
    (fun a ->
      match Axis.of_string (Axis.to_string a) with
      | Some b -> check "roundtrip" true (a = b)
      | None -> Alcotest.fail "axis name roundtrip")
    [ Axis.Self; Axis.Child; Axis.Descendant; Axis.Descendant_or_self; Axis.Parent;
      Axis.Ancestor; Axis.Ancestor_or_self; Axis.Following_sibling; Axis.Preceding_sibling;
      Axis.Following; Axis.Preceding; Axis.Attribute ]

(* ---------------- conversion ---------------- *)

let test_load_merges_text () =
  let doc =
    Tree.document
      (Tree.elem "a"
         ~children:[ Tree.text "one"; Tree.Cdata " two"; Tree.Comment "gone"; Tree.text " three" ])
  in
  let s = Store.create () in
  let d = Convert.load s doc in
  let a = List.hd (Store.children s d) in
  (match Store.children s a with
  | [ t ] -> check_str "merged" "one two three" (Store.string_value s t)
  | _ -> Alcotest.fail "expected one text node");
  check_str "element value" "one two three" (Store.string_value s a)

let test_load_to_document_roundtrip () =
  let doc = Xsm_schema.Samples.example8_document in
  let s = Store.create () in
  let d = Convert.load s doc in
  let back = Convert.to_document s d in
  check "content equal" true (Tree.equal_content back doc)

let test_to_element_errors () =
  let s, d, _, _, _, kind = fixture () in
  expect_invalid_arg (fun () -> Convert.to_element s d);
  expect_invalid_arg (fun () -> Convert.to_element s kind)

let suite =
  [
    ( "xdm.accessors",
      [
        Alcotest.test_case "document" `Quick test_document_accessors;
        Alcotest.test_case "element" `Quick test_element_accessors;
        Alcotest.test_case "attribute" `Quick test_attribute_accessors;
        Alcotest.test_case "text" `Quick test_text_accessors;
        Alcotest.test_case "string-value" `Quick test_string_value_concat;
        Alcotest.test_case "typed-value" `Quick test_typed_value_untyped;
      ] );
    ( "xdm.state-algebra",
      [
        Alcotest.test_case "shape constraints" `Quick test_shape_constraints;
        Alcotest.test_case "disjoint carriers" `Quick test_carriers_disjoint;
        Alcotest.test_case "insert/remove" `Quick test_insert_remove_child;
      ] );
    ( "xdm.order",
      [
        Alcotest.test_case "§7 rules" `Quick test_order_rules;
        Alcotest.test_case "total order" `Quick test_order_total_and_consistent;
        Alcotest.test_case "different trees" `Quick test_order_different_trees_rejected;
        Alcotest.test_case "index in parent" `Quick test_index_in_parent;
      ] );
    ( "xdm.axes",
      [
        Alcotest.test_case "all axes" `Quick test_axes;
        Alcotest.test_case "names" `Quick test_axis_names;
      ] );
    ( "xdm.convert",
      [
        Alcotest.test_case "text merging" `Quick test_load_merges_text;
        Alcotest.test_case "roundtrip" `Quick test_load_to_document_roundtrip;
        Alcotest.test_case "errors" `Quick test_to_element_errors;
      ] );
  ]
