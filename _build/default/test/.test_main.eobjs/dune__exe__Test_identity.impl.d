test/test_identity.ml: Alcotest Ast List Printf Result Samples String Validator Xsm_identity Xsm_schema Xsm_xdm Xsm_xml Xsm_xsd
