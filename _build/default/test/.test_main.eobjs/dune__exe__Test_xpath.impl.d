test/test_xpath.ml: Alcotest List Result Xsm_numbering Xsm_schema Xsm_storage Xsm_xdm Xsm_xml Xsm_xpath
