test/test_xml.ml: Alcotest Buffer List Name Parser Printer Printf Result Tree Xsm_xml
