test/test_numbering.ml: Alcotest List Printf Result Xsm_numbering Xsm_schema Xsm_xdm Xsm_xml
