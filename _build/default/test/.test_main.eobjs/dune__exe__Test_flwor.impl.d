test/test_flwor.ml: Alcotest List Result Xsm_schema Xsm_storage Xsm_xdm Xsm_xpath
