test/test_conformance.ml: Alcotest Builtin List Result Value Xsm_datatypes
