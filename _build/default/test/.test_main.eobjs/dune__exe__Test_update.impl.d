test/test_update.ml: Alcotest Ast List Result Samples String Update Validator Xsm_schema Xsm_xdm Xsm_xml
