test/test_properties.ml: Float Fun List Printf QCheck QCheck_alcotest Result String Xsm_datatypes Xsm_numbering Xsm_schema Xsm_storage Xsm_xdm Xsm_xml
