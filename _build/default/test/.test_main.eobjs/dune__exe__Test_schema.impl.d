test/test_schema.ml: Alcotest Ast Backtrack Canonical Content_automaton Format Generator List Printf Result Roundtrip Samples Schema_check String Validator Xsm_datatypes Xsm_schema Xsm_xdm Xsm_xml
