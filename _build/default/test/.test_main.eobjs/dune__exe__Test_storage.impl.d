test/test_storage.ml: Alcotest List Option Xsm_numbering Xsm_schema Xsm_storage Xsm_xdm Xsm_xml
