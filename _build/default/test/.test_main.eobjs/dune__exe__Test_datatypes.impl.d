test/test_datatypes.ml: Alcotest Builtin Calendar Decimal Facet Float List Regex Result Simple_type Value Xsm_datatypes Xsm_xml
