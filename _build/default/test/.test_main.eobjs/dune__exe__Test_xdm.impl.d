test/test_xdm.ml: Alcotest List Option Xsm_datatypes Xsm_schema Xsm_xdm Xsm_xml
