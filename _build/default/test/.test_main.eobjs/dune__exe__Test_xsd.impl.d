test/test_xsd.ml: Alcotest Ast Generator List Printf Result Samples Schema_check Validator Xsm_schema Xsm_xdm Xsm_xml Xsm_xsd
