(* Table-driven conformance tests for the simple type system —
   a miniature of the W3C datatype test suite (the corpus substitution
   recorded in DESIGN.md).  Each row is (lexical, expected) for one
   built-in type; expected is `V (accept) or `I (reject).  Where the
   value space matters, [canon] rows also pin the canonical form. *)

open Xsm_datatypes

let check = Alcotest.(check bool)
let check_str = Alcotest.(check string)

type expectation = V | I

let run_table name ty rows () =
  List.iter
    (fun (lexical, expected) ->
      let actual = Result.is_ok (Builtin.validate ty lexical) in
      let want = expected = V in
      if actual <> want then
        Alcotest.failf "%s: %S expected %s" name lexical (if want then "valid" else "invalid"))
    rows

let canon_table ty rows () =
  List.iter
    (fun (lexical, canonical) ->
      match Builtin.validate_atomic ty lexical with
      | Ok v -> check_str lexical canonical (Value.canonical_string v)
      | Error e -> Alcotest.failf "%S should be valid: %s" lexical e)
    rows

let case name ty rows = Alcotest.test_case name `Quick (run_table name ty rows)

let suite =
  [
    ( "conformance.primitive",
      [
        case "string" (Builtin.Primitive Builtin.P_string)
          [ ("", V); ("any text", V); ("  spaces kept  ", V); ("\xF0\x9F\x90\xAB", V) ];
        case "boolean" (Builtin.Primitive Builtin.P_boolean)
          [
            ("true", V); ("false", V); ("1", V); ("0", V); (" true ", V);
            ("TRUE", I); ("T", I); ("yes", I); ("2", I); ("", I); ("true false", I);
          ];
        case "decimal" (Builtin.Primitive Builtin.P_decimal)
          [
            ("3.14", V); ("-3.14", V); ("+3.14", V); ("210", V); ("0", V);
            (".5", V); ("5.", V); ("00010.0100", V);
            ("123456789123456789123456789", V);
            ("3,14", I); ("1e2", I); ("1E2", I); ("INF", I); ("NaN", I);
            ("1.2.3", I); ("--1", I); ("+-1", I); ("", I); (".", I);
          ];
        case "float" (Builtin.Primitive Builtin.P_float)
          [
            ("1.5", V); ("-0", V); ("1e5", V); ("1E5", V); ("1.5e-10", V);
            ("INF", V); ("-INF", V); ("NaN", V); (".5e2", V);
            ("inf", I); ("nan", I); ("+INF", I); ("1e", I); ("e5", I); ("1.5E", I);
          ];
        case "double" (Builtin.Primitive Builtin.P_double)
          [ ("2.718281828459045", V); ("-1E308", V); ("INF", V); ("0.1e1 0", I) ];
        case "duration" (Builtin.Primitive Builtin.P_duration)
          [
            ("P1Y", V); ("P1M", V); ("P1D", V); ("PT1H", V); ("PT1M", V);
            ("PT1.5S", V); ("P1Y2M3DT4H5M6.7S", V); ("-P1Y", V); ("PT0S", V);
            ("P", I); ("PT", I); ("P1YT", I); ("P-1Y", I); ("P1.5Y", I);
            ("P1H", I); ("PT1Y", I); ("1Y", I); ("P1M1Y", I); ("", I);
          ];
        case "dateTime" (Builtin.Primitive Builtin.P_date_time)
          [
            ("2004-04-12T13:20:00", V); ("2004-04-12T13:20:15.5", V);
            ("2004-04-12T13:20:00-05:00", V); ("2004-04-12T13:20:00Z", V);
            ("-0045-01-01T00:00:00", V); ("2004-02-29T00:00:00", V);
            ("2100-02-29T00:00:00", I);  (* 2100 is not a leap year *)
            ("2004-04-12T13:00", I); ("2004-04-12", I); ("04-12-2004T13:20:00", I);
            ("2004-04-12T25:00:00", I); ("2004-13-01T00:00:00", I);
            ("2004-04-31T00:00:00", I); ("0000-01-01T00:00:00", I);
          ];
        case "time" (Builtin.Primitive Builtin.P_time)
          [
            ("13:20:00", V); ("13:20:30.5555", V); ("13:20:00-05:00", V);
            ("13:20:00Z", V); ("00:00:00", V); ("23:59:59.999", V);
            ("5:20:00", I); ("13:20", I); ("13:65:00", I); ("24:01:00", I); ("", I);
          ];
        case "date" (Builtin.Primitive Builtin.P_date)
          [
            ("2004-04-12", V); ("-0045-01-01", V); ("12004-04-12", V);
            ("2004-04-12-05:00", V); ("2004-04-12Z", V); ("2004-02-29", V);
            ("99-04-12", I); ("2004-4-2", I); ("2004/04/02", I); ("04-12-2004", I);
            ("2003-02-29", I);
          ];
        case "gYearMonth" (Builtin.Primitive Builtin.P_g_year_month)
          [ ("2004-04", V); ("2004-04Z", V); ("-0045-01", V); ("2004", I); ("2004-13", I); ("04-2004", I) ];
        case "gYear" (Builtin.Primitive Builtin.P_g_year)
          [ ("2004", V); ("2004-05:00", V); ("12004", V); ("-0045", V); ("04", I); ("2004-04", I) ];
        case "gMonthDay" (Builtin.Primitive Builtin.P_g_month_day)
          [ ("--04-12", V); ("--04-30", V); ("--02-29", V); ("--04-31", I); ("04-12", I); ("--13-01", I) ];
        case "gDay" (Builtin.Primitive Builtin.P_g_day)
          [ ("---02", V); ("---31", V); ("---32", I); ("---00", I); ("--30-", I); ("02", I) ];
        case "gMonth" (Builtin.Primitive Builtin.P_g_month)
          [ ("--04", V); ("--12Z", V); ("--13", I); ("--00", I); ("04", I); ("--4", I) ];
        case "hexBinary" (Builtin.Primitive Builtin.P_hex_binary)
          [ ("0FB8", V); ("0fb8", V); ("", V); ("FB8", I); ("0G", I); ("0x0F", I) ];
        case "base64Binary" (Builtin.Primitive Builtin.P_base64_binary)
          [
            ("0FB8", V); ("0fb8", V); ("", V); ("aGVsbG8=", V); ("AA==", V);
            ("a GVs bG8=", V);  (* embedded single spaces are lexical *)
            ("aGVsbG8", I); ("a===", I); ("=AAA", I); ("!", I);
          ];
        case "anyURI" (Builtin.Primitive Builtin.P_any_uri)
          [ ("http://www.example.com", V); ("../rel", V); ("urn:a:b", V); ("#frag", V); ("", V) ];
        case "QName" (Builtin.Primitive Builtin.P_qname)
          [ ("pre:local", V); ("local", V); ("_a:b-c", V); (":x", I); ("x:", I); ("a:b:c", I); ("1a", I) ];
      ] );
    ( "conformance.derived",
      [
        case "normalizedString" Builtin.Normalized_string
          [ ("no tabs", V); ("anything goes after replace", V) ];
        case "token" Builtin.Token [ ("a b c", V); ("single", V) ];
        case "language" Builtin.Language
          [
            ("en", V); ("en-US", V); ("zh-Hant", V); ("x-klingon", V); ("de-CH-1996", V);
            ("waytoolongsubtag1", I); ("en_US", I); ("1en", I); ("", I); ("en-", I);
          ];
        case "NMTOKEN" Builtin.Nmtoken
          [ ("Snoopy", V); ("CMS", V); ("1950-10-04", V); ("0836217462", V); ("brought classes", I); ("", I) ];
        case "Name" Builtin.Name
          [ ("Snoopy", V); ("_1950-10-04", V); ("pre:local", V); ("0836217462", I); ("-minus", I) ];
        case "NCName" Builtin.Ncname
          [ ("Snoopy", V); ("_under", V); ("pre:local", I); ("1a", I) ];
        case "ID" Builtin.Id [ ("n1", V); ("a:b", I) ];
        case "IDREF" Builtin.Idref [ ("n1", V); ("a b", I) ];
        case "integer" Builtin.Integer
          [
            ("0", V); ("-1", V); ("+1", V); ("123456789012345678901234567890", V);
            ("1.", I); ("1.0", I); ("1e2", I); ("", I); ("0.9", I);
          ];
        case "nonPositiveInteger" Builtin.Non_positive_integer
          [ ("0", V); ("-0", V); ("-123", V); ("1", I) ];
        case "negativeInteger" Builtin.Negative_integer [ ("-1", V); ("0", I); ("1", I) ];
        case "long" Builtin.Long
          [
            ("9223372036854775807", V); ("-9223372036854775808", V);
            ("9223372036854775808", I); ("-9223372036854775809", I);
          ];
        case "int" Builtin.Int
          [ ("2147483647", V); ("-2147483648", V); ("2147483648", I); ("-2147483649", I) ];
        case "short" Builtin.Short [ ("32767", V); ("-32768", V); ("32768", I) ];
        case "byte" Builtin.Byte [ ("127", V); ("-128", V); ("128", I); ("-129", I) ];
        case "nonNegativeInteger" Builtin.Non_negative_integer [ ("0", V); ("1", V); ("-1", I) ];
        case "unsignedLong" Builtin.Unsigned_long
          [ ("18446744073709551615", V); ("0", V); ("18446744073709551616", I); ("-1", I) ];
        case "unsignedInt" Builtin.Unsigned_int [ ("4294967295", V); ("4294967296", I) ];
        case "unsignedShort" Builtin.Unsigned_short [ ("65535", V); ("65536", I) ];
        case "unsignedByte" Builtin.Unsigned_byte [ ("255", V); ("256", I) ];
        case "positiveInteger" Builtin.Positive_integer [ ("1", V); ("0", I); ("-1", I) ];
        case "NMTOKENS" Builtin.Nmtokens
          [ ("a b c", V); ("  one  ", V); ("", I); ("  ", I) ];
        case "IDREFS" Builtin.Idrefs [ ("r1 r2", V); ("", I) ];
      ] );
    ( "conformance.canonical",
      [
        Alcotest.test_case "decimal" `Quick
          (canon_table (Builtin.Primitive Builtin.P_decimal)
             [
               ("+004.20", "4.2"); ("-0", "0"); ("0.000", "0"); (".5", "0.5");
               ("100.", "100");
             ]);
        Alcotest.test_case "boolean" `Quick
          (canon_table (Builtin.Primitive Builtin.P_boolean)
             [ ("1", "true"); ("0", "false"); ("true", "true") ]);
        Alcotest.test_case "dateTime keeps zone" `Quick
          (canon_table (Builtin.Primitive Builtin.P_date_time)
             [
               ("2004-04-12T13:20:00Z", "2004-04-12T13:20:00Z");
               ("2004-04-12T13:20:00+05:30", "2004-04-12T13:20:00+05:30");
             ]);
        Alcotest.test_case "duration folds" `Quick
          (canon_table (Builtin.Primitive Builtin.P_duration)
             [ ("PT36H", "P1DT12H"); ("P0Y", "PT0S"); ("PT90M", "PT1H30M") ]);
        Alcotest.test_case "hexBinary uppercases" `Quick
          (canon_table (Builtin.Primitive Builtin.P_hex_binary) [ ("0fb8", "0FB8") ]);
        Alcotest.test_case "integer strips" `Quick
          (canon_table Builtin.Integer [ ("+007", "7"); ("-0", "0") ]);
      ] );
  ]
