(** Parser for the XPath subset.

    Grammar:
    {v
    path  ::= ('/' | '//')? step (('/' | '//') step)*
    step  ::= (axis '::')? test pred*  |  '@' name pred*  |  '..'  |  '.'
    test  ::= qname | '*' | 'text()' | 'node()'
    pred  ::= '[' int ']' | '[' 'last()' ']'
            | '[' 'position()' '=' int ']'
            | '[' path ']' | '[' path '=' literal ']'
    v}
    where [axis] is any axis name of [Xsm_xdm.Axis] and [literal] is a
    single- or double-quoted string. *)

val parse : string -> (Path_ast.path, string) result
val parse_exn : string -> Path_ast.path
