(** The evaluator: a functor over {!Navigator.S}, so the same query
    code runs on the XDM store and on the Sedna block storage —
    which is the operational content of the paper's claim that the
    accessors suffice for a query language. *)

module Make (N : Navigator.S) : sig
  val eval : N.t -> N.node -> Path_ast.path -> N.node list
  (** Result nodes in document order, without duplicates.  Absolute
      paths rebase on the root of the context node's tree. *)

  val eval_string : N.t -> N.node -> string -> (N.node list, string) result
  (** Parse and evaluate. *)

  val strings : N.t -> N.node list -> string list
  (** String values of a node list (convenience). *)

  val count : N.t -> N.node -> string -> (int, string) result
end

module Over_store : module type of Make (Navigator.Xdm)
module Over_storage : module type of Make (Navigator.Storage)
