(* Parsing re-uses the XPath scanner conventions; evaluation is the
   classic tuple-stream interpretation of FLWOR. *)

type source = Path of Path_ast.path | Var of string * Path_ast.path option

type expr =
  | E_source of source
  | E_string of expr
  | E_count of expr

type cond =
  | Equals of expr * string
  | Not_equals of expr * string
  | Exists of expr

type clause =
  | For of string * source
  | Let of string * source
  | Where of cond list
  | Order_by of expr

type query = { clauses : clause list; return : expr }

(* ------------------------------------------------------------------ *)
(* Parser                                                              *)

exception Err of string

let fail fmt = Printf.ksprintf (fun s -> raise (Err s)) fmt

type scan = { s : string; mutable i : int }

let peek sc = if sc.i < String.length sc.s then Some sc.s.[sc.i] else None

let skip_ws sc =
  while (match peek sc with Some (' ' | '\n' | '\t' | '\r') -> true | _ -> false) do
    sc.i <- sc.i + 1
  done

let looking_at sc str =
  let n = String.length str in
  sc.i + n <= String.length sc.s && String.sub sc.s sc.i n = str

let eat sc str =
  skip_ws sc;
  if looking_at sc str then begin
    sc.i <- sc.i + String.length str;
    true
  end
  else false

let keyword sc kw =
  skip_ws sc;
  let n = String.length kw in
  if
    looking_at sc kw
    && (sc.i + n >= String.length sc.s
       ||
       let c = sc.s.[sc.i + n] in
       not ((c >= 'a' && c <= 'z') || (c >= 'A' && c <= 'Z')))
  then begin
    sc.i <- sc.i + n;
    true
  end
  else false

let scan_name sc =
  skip_ws sc;
  let start = sc.i in
  while
    (match peek sc with
    | Some c ->
      (c >= 'a' && c <= 'z') || (c >= 'A' && c <= 'Z') || (c >= '0' && c <= '9') || c = '_'
      || c = '-'
    | None -> false)
  do
    sc.i <- sc.i + 1
  done;
  if sc.i = start then fail "expected a name at offset %d" start;
  String.sub sc.s start (sc.i - start)

let scan_literal sc =
  skip_ws sc;
  match peek sc with
  | Some (('"' | '\'') as q) ->
    sc.i <- sc.i + 1;
    let start = sc.i in
    while (match peek sc with Some c -> c <> q | None -> false) do
      sc.i <- sc.i + 1
    done;
    (match peek sc with
    | Some _ ->
      let v = String.sub sc.s start (sc.i - start) in
      sc.i <- sc.i + 1;
      v
    | None -> fail "unterminated string literal")
  | _ -> fail "expected a string literal"

(* a path chunk: characters a path may contain, until whitespace or a
   delimiter that ends the expression *)
let scan_path_text sc =
  skip_ws sc;
  let start = sc.i in
  let depth = ref 0 in
  let continue () =
    match peek sc with
    | None -> false
    | Some '[' ->
      incr depth;
      true
    | Some ']' ->
      decr depth;
      true
    | Some (' ' | '\n' | '\t' | '\r') -> !depth > 0
    | Some (')' | ',') -> false
    | Some ('=' | '!') -> !depth > 0
    | Some _ -> true
  in
  while continue () do
    sc.i <- sc.i + 1
  done;
  if sc.i = start then fail "expected a path at offset %d" start;
  String.sub sc.s start (sc.i - start)

let parse_path_text text =
  match Path_parser.parse text with Ok p -> p | Error e -> fail "%s" e

let parse_source sc =
  skip_ws sc;
  if eat sc "$" then begin
    let name = scan_name sc in
    skip_ws sc;
    if looking_at sc "/" then begin
      (* a relative continuation: strip the leading slash and parse the
         remainder as a relative path *)
      sc.i <- sc.i + 1;
      let text = scan_path_text sc in
      Var (name, Some (parse_path_text text))
    end
    else Var (name, None)
  end
  else Path (parse_path_text (scan_path_text sc))

let rec parse_expr sc =
  skip_ws sc;
  if keyword sc "string" then begin
    if not (eat sc "(") then fail "expected ( after string";
    let e = parse_expr sc in
    if not (eat sc ")") then fail "expected )";
    E_string e
  end
  else if keyword sc "count" then begin
    if not (eat sc "(") then fail "expected ( after count";
    let e = parse_expr sc in
    if not (eat sc ")") then fail "expected )";
    E_count e
  end
  else E_source (parse_source sc)

let parse_cond sc =
  let e = parse_expr sc in
  skip_ws sc;
  if eat sc "!=" then Not_equals (e, scan_literal sc)
  else if eat sc "=" then Equals (e, scan_literal sc)
  else Exists e

let parse_query sc =
  let clauses = ref [] in
  let rec clause_loop () =
    skip_ws sc;
    if keyword sc "for" then begin
      if not (eat sc "$") then fail "expected $variable after for";
      let name = scan_name sc in
      if not (keyword sc "in") then fail "expected in";
      clauses := For (name, parse_source sc) :: !clauses;
      clause_loop ()
    end
    else if keyword sc "let" then begin
      if not (eat sc "$") then fail "expected $variable after let";
      let name = scan_name sc in
      if not (eat sc ":=") then fail "expected :=";
      clauses := Let (name, parse_source sc) :: !clauses;
      clause_loop ()
    end
    else if keyword sc "where" then begin
      let conds = ref [ parse_cond sc ] in
      while keyword sc "and" do
        conds := parse_cond sc :: !conds
      done;
      clauses := Where (List.rev !conds) :: !clauses;
      clause_loop ()
    end
    else if keyword sc "order" then begin
      if not (keyword sc "by") then fail "expected by after order";
      clauses := Order_by (parse_expr sc) :: !clauses;
      clause_loop ()
    end
  in
  clause_loop ();
  if not (keyword sc "return") then fail "expected return";
  let return = parse_expr sc in
  skip_ws sc;
  if sc.i <> String.length sc.s then fail "trailing characters at offset %d" sc.i;
  { clauses = List.rev !clauses; return }

let parse text =
  let sc = { s = text; i = 0 } in
  match parse_query sc with q -> Ok q | exception Err m -> Error m

let parse_exn text = match parse text with Ok q -> q | Error e -> invalid_arg e

(* ------------------------------------------------------------------ *)
(* Evaluation                                                          *)

type 'node item = Nodes of 'node list | Str of string | Num of int

module Make (N : Navigator.S) = struct
  module P = Eval.Make (N)

  type binding = Single of N.node | Seq of N.node list

  exception Eval_err of string

  let efail fmt = Printf.ksprintf (fun s -> raise (Eval_err s)) fmt

  let source_nodes backend ctx env = function
    | Path p -> P.eval backend ctx p
    | Var (name, rel) -> (
      match List.assoc_opt name env with
      | None -> efail "unbound variable $%s" name
      | Some bound -> (
        let bases = match bound with Single n -> [ n ] | Seq ns -> ns in
        match rel with
        | None -> bases
        | Some p -> List.concat_map (fun b -> P.eval backend b p) bases))

  let rec eval_expr backend ctx env = function
    | E_source s -> Nodes (source_nodes backend ctx env s)
    | E_string e -> (
      match eval_expr backend ctx env e with
      | Nodes ns ->
        Str (String.concat "" (List.map (N.string_value backend) ns))
      | Str s -> Str s
      | Num n -> Str (string_of_int n))
    | E_count e -> (
      match eval_expr backend ctx env e with
      | Nodes ns -> Num (List.length ns)
      | Str _ -> Num 1
      | Num n -> Num n)

  let item_string backend = function
    | Nodes ns -> String.concat "" (List.map (N.string_value backend) ns)
    | Str s -> s
    | Num n -> string_of_int n

  let cond_holds backend ctx env = function
    | Equals (e, lit) -> (
      match eval_expr backend ctx env e with
      | Nodes ns -> List.exists (fun n -> String.equal (N.string_value backend n) lit) ns
      | Str s -> String.equal s lit
      | Num n -> string_of_int n = lit)
    | Not_equals (e, lit) -> (
      match eval_expr backend ctx env e with
      | Nodes ns -> List.exists (fun n -> not (String.equal (N.string_value backend n) lit)) ns
      | Str s -> not (String.equal s lit)
      | Num n -> string_of_int n <> lit)
    | Exists e -> (
      match eval_expr backend ctx env e with
      | Nodes ns -> ns <> []
      | Str _ -> true
      | Num n -> n <> 0)

  (* the tuple stream: a list of environments *)
  let apply_clause backend ctx streams clause =
    match clause with
    | For (name, src) ->
      List.concat_map
        (fun env ->
          List.map (fun n -> (name, Single n) :: env) (source_nodes backend ctx env src))
        streams
    | Let (name, src) ->
      List.map (fun env -> (name, Seq (source_nodes backend ctx env src)) :: env) streams
    | Where conds ->
      List.filter (fun env -> List.for_all (cond_holds backend ctx env) conds) streams
    | Order_by e ->
      List.stable_sort
        (fun env1 env2 ->
          String.compare
            (item_string backend (eval_expr backend ctx env1 e))
            (item_string backend (eval_expr backend ctx env2 e)))
        streams

  let eval backend ctx (q : query) =
    match
      let streams = List.fold_left (apply_clause backend ctx) [ [] ] q.clauses in
      List.map (fun env -> eval_expr backend ctx env q.return) streams
    with
    | items -> Ok items
    | exception Eval_err m -> Error m

  let eval_string backend ctx text =
    match parse text with Ok q -> eval backend ctx q | Error e -> Error e

  let strings backend items = List.map (item_string backend) items
end

module Over_store = Make (Navigator.Xdm)
module Over_storage = Make (Navigator.Storage)
