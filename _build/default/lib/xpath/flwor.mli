(** A miniature FLWOR query language — the §11 direction ("a simple
    semantics of a data manipulation language like XQuery") on the
    query side.  Everything evaluates through the §5 accessors via
    {!Navigator.S}, so the same query text runs over the XDM store and
    over the Sedna block storage.

    Grammar:
    {v
    query   ::= clause+ 'return' expr
    clause  ::= 'for' '$'name 'in' source
              | 'let' '$'name ':=' source
              | 'where' cond ('and' cond)*
              | 'order' 'by' expr
    source  ::= path | '$'name rel-path?
    cond    ::= expr ('=' | '!=') literal
              | expr                       (non-empty = true)
    expr    ::= '$'name rel-path? | path | 'string(' expr ')' | 'count(' expr ')'
    v}

    [for] iterates a node sequence binding each node in turn; [let]
    binds the whole sequence; [where] filters tuples; [order by] sorts
    the tuple stream by the expression's string value; [return]
    produces one result item per surviving tuple. *)

type query

val parse : string -> (query, string) result
val parse_exn : string -> query

(** Results are either nodes or computed strings/numbers. *)
type 'node item = Nodes of 'node list | Str of string | Num of int

module Make (N : Navigator.S) : sig
  val eval : N.t -> N.node -> query -> (N.node item list, string) result
  (** Evaluate with the given context node (absolute paths rebase on
      its root). *)

  val eval_string : N.t -> N.node -> string -> (N.node item list, string) result

  val strings : N.t -> N.node item list -> string list
  (** Flatten results to strings (string values for nodes). *)
end

module Over_store : module type of Make (Navigator.Xdm)
module Over_storage : module type of Make (Navigator.Storage)
