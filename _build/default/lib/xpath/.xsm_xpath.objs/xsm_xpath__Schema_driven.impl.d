lib/xpath/schema_driven.ml: List Path_ast Path_parser Xsm_numbering Xsm_storage Xsm_xdm Xsm_xml
