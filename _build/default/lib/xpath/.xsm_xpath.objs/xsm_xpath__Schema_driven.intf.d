lib/xpath/schema_driven.mli: Path_ast Xsm_storage
