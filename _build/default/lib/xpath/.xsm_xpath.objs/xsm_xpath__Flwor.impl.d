lib/xpath/flwor.ml: Eval List Navigator Path_ast Path_parser Printf String
