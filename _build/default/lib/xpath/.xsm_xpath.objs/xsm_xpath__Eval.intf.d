lib/xpath/eval.mli: Navigator Path_ast
