lib/xpath/path_ast.ml: Format List Xsm_xdm Xsm_xml
