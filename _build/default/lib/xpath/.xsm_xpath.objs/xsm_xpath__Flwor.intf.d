lib/xpath/flwor.mli: Navigator
