lib/xpath/path_parser.ml: List Path_ast Printf String Xsm_xdm Xsm_xml
