lib/xpath/path_parser.mli: Path_ast
