lib/xpath/eval.ml: List Navigator Option Path_ast Path_parser String Xsm_xdm Xsm_xml
