lib/xpath/path_ast.mli: Format Xsm_xdm Xsm_xml
