lib/xpath/navigator.ml: Xsm_numbering Xsm_storage Xsm_xdm Xsm_xml
