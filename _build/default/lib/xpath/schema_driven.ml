module B = Xsm_storage.Block_storage
module Schema = Xsm_storage.Descriptive_schema
module Label = Xsm_numbering.Sedna_label
open Path_ast

let step_supported (s : step) =
  s.predicates = []
  && (match s.axis with Xsm_xdm.Axis.Child -> true | _ -> false)
  && match s.test with Name_test _ | Wildcard | Text_test -> true | Node_test -> false

let supported (p : path) = p.absolute && p.steps <> [] && List.for_all (fun (s, _) -> step_supported s) p.steps

let test_matches_snode test sn =
  match test, Schema.kind sn with
  | Name_test n, (Schema.Element | Schema.Attribute) -> (
    match Schema.name sn with Some m -> Xsm_xml.Name.equal m n | None -> false)
  | Name_test _, (Schema.Document | Schema.Text) -> false
  | Wildcard, Schema.Element -> true
  | Wildcard, (Schema.Document | Schema.Attribute | Schema.Text) -> false
  | Text_test, Schema.Text -> true
  | Text_test, (Schema.Document | Schema.Element | Schema.Attribute) -> false
  | Node_test, _ -> false

let rec schema_descendants dschema sn =
  sn :: List.concat_map (schema_descendants dschema) (Schema.children dschema sn)

let matching_snodes t (p : path) =
  if not (supported p) then
    Error "schema-driven evaluation supports absolute predicate-free child//descendant name paths"
  else begin
    let dschema = B.schema t in
    let step snodes ((s : step), desc_flag) =
      let bases =
        if desc_flag then
          List.sort_uniq
            (fun a b -> compare (Schema.snode_id a) (Schema.snode_id b))
            (List.concat_map (schema_descendants dschema) snodes)
        else snodes
      in
      List.sort_uniq
        (fun a b -> compare (Schema.snode_id a) (Schema.snode_id b))
        (List.concat_map
           (fun sn ->
             List.filter (test_matches_snode s.test) (Schema.children dschema sn))
           bases)
    in
    Ok (List.fold_left step [ Schema.root dschema ] p.steps)
  end

let eval t p =
  match matching_snodes t p with
  | Error e -> Error e
  | Ok snodes ->
    (* each snode's block scan is already in document order; merge by nid *)
    let per = List.map (B.descendants_by_snode t) snodes in
    (match per with
    | [ single ] -> Ok single
    | lists ->
      Ok
        (List.sort (fun a b -> Label.compare (B.nid a) (B.nid b)) (List.concat lists)))

let eval_string t text =
  match Path_parser.parse text with Ok p -> eval t p | Error e -> Error e
