(** Descriptive-schema-driven query evaluation — the Sedna access
    path of §9.1/§9.2.

    For a structural path (child and descendant steps, name or
    [text()] tests, no predicates), the query is first evaluated over
    the {e descriptive schema} — a tree usually orders of magnitude
    smaller than the document — selecting the matching schema nodes.
    Because every document path has exactly one schema path and vice
    versa, every descriptor stored under a matching schema node is a
    result: the answer is read off the schema nodes' block lists with
    no document-tree traversal at all.  Bench E8 compares this against
    the navigational evaluator. *)

val supported : Path_ast.path -> bool
(** Absolute, predicate-free, child/descendant steps with
    name/wildcard/text tests. *)

val eval :
  Xsm_storage.Block_storage.t ->
  Path_ast.path ->
  (Xsm_storage.Block_storage.desc list, string) result
(** Result descriptors in document order.  [Error] when the path shape
    is not {!supported}. *)

val eval_string :
  Xsm_storage.Block_storage.t ->
  string ->
  (Xsm_storage.Block_storage.desc list, string) result

val matching_snodes :
  Xsm_storage.Block_storage.t ->
  Path_ast.path ->
  (Xsm_storage.Descriptive_schema.snode list, string) result
(** The schema-level half of the evaluation, exposed for tests. *)
