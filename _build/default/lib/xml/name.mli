(** Qualified names (QNames) for XML elements and attributes.

    A name is a possibly-prefixed local name, as written in an XML
    document: [prefix:local] or just [local].  Namespace URI resolution
    is out of scope of the paper's model (which works with QNames
    directly), so names compare by their written form. *)

type t = {
  prefix : string option;  (** the part before the colon, if any *)
  local : string;  (** the local part; never empty for a valid name *)
}

val make : ?prefix:string -> string -> t
(** [make ?prefix local] builds a name. *)

val local : string -> t
(** [local s] is [make s]: a name with no prefix. *)

val of_string : string -> (t, string) result
(** Parse a written QName such as ["xsd:element"] or ["Book"].  Errors
    on empty input, empty prefix or local part, or more than one
    colon. *)

val of_string_exn : string -> t
(** Like {!of_string} but raises [Invalid_argument]. *)

val to_string : t -> string
(** The written form, [prefix:local] or [local]. *)

val equal : t -> t -> bool
val compare : t -> t -> int
val pp : Format.formatter -> t -> unit

val is_ncname : string -> bool
(** [is_ncname s] checks that [s] is a valid non-colonized XML name:
    a letter or underscore followed by letters, digits, hyphens,
    underscores and dots. *)

module Map : Map.S with type key = t
module Set : Set.S with type elt = t
