type t = { prefix : string option; local : string }

let make ?prefix local = { prefix; local }
let local local = { prefix = None; local }

let is_name_start_char c =
  (c >= 'a' && c <= 'z') || (c >= 'A' && c <= 'Z') || c = '_'
  || Char.code c >= 0x80

let is_name_char c =
  is_name_start_char c || (c >= '0' && c <= '9') || c = '-' || c = '.'

let is_ncname s =
  String.length s > 0
  && is_name_start_char s.[0]
  && String.for_all is_name_char s

let of_string s =
  match String.index_opt s ':' with
  | None -> if is_ncname s then Ok { prefix = None; local = s } else Error (Printf.sprintf "invalid name %S" s)
  | Some i ->
    let prefix = String.sub s 0 i in
    let local = String.sub s (i + 1) (String.length s - i - 1) in
    if String.contains local ':' then Error (Printf.sprintf "name %S has two colons" s)
    else if not (is_ncname prefix) then Error (Printf.sprintf "invalid prefix in %S" s)
    else if not (is_ncname local) then Error (Printf.sprintf "invalid local part in %S" s)
    else Ok { prefix = Some prefix; local }

let of_string_exn s =
  match of_string s with Ok n -> n | Error e -> invalid_arg e

let to_string = function
  | { prefix = None; local } -> local
  | { prefix = Some p; local } -> p ^ ":" ^ local

let equal a b =
  String.equal a.local b.local
  && Option.equal String.equal a.prefix b.prefix

let compare a b =
  match String.compare a.local b.local with
  | 0 -> Option.compare String.compare a.prefix b.prefix
  | c -> c

let pp ppf n = Format.pp_print_string ppf (to_string n)

module Ord = struct
  type nonrec t = t

  let compare = compare
end

module Map = Map.Make (Ord)
module Set = Set.Make (Ord)
