(** A self-contained XML 1.0 parser.

    Supports elements, attributes (single- or double-quoted), character
    data, CDATA sections, comments, processing instructions, the XML
    declaration, a DOCTYPE declaration (skipped), the five predefined
    entities and decimal/hexadecimal character references.

    The parser enforces well-formedness: matching end tags, a single
    root element, unique attribute names per element, and no stray
    markup.  DTD-defined entities are not supported. *)

type error = {
  line : int;  (** 1-based line of the offending position *)
  column : int;  (** 1-based column *)
  message : string;
}

val pp_error : Format.formatter -> error -> unit
val error_to_string : error -> string

val parse_document : ?base_uri:string -> string -> (Tree.t, error) result
(** Parse a complete document, prolog included. *)

val parse_element : string -> (Tree.element, error) result
(** Parse a string that consists of exactly one element (no prolog). *)
