(** XML serialization.

    Two modes: [to_string] produces compact output with no inserted
    whitespace (safe for mixed content — serializing and reparsing is
    the identity on text), and [to_pretty_string] indents element-only
    content for human consumption. *)

val escape_text : string -> string
(** Escape ampersand and angle brackets for character-data context. *)

val escape_attribute : string -> string
(** Escape ampersand, angle brackets, double quote and newlines/tabs
    for a double-quoted attribute value. *)

val element_to_string : Tree.element -> string
val to_string : Tree.t -> string
(** Compact serialization with an XML declaration. *)

val element_to_pretty_string : ?indent:int -> Tree.element -> string
val to_pretty_string : ?indent:int -> Tree.t -> string
(** Indented serialization.  Elements whose children include text are
    printed inline to preserve mixed content. *)
