(** Syntactic XML documents.

    This is the textual-level representation of an XML document: what a
    parser produces and a serializer consumes.  The paper's data-model
    trees (nodes with accessors) live in [Xsm_xdm]; the theorem of §8
    relates the two. *)

type attribute = { name : Name.t; value : string }

type node =
  | Element of element
  | Text of string  (** character data, entity references already resolved *)
  | Cdata of string  (** CDATA section content, kept distinct for printing *)
  | Comment of string
  | Pi of { target : string; data : string }

and element = {
  name : Name.t;
  attributes : attribute list;  (** in written order *)
  children : node list;  (** in document order *)
}

type t = {
  version : string;  (** from the XML declaration; ["1.0"] by default *)
  encoding : string option;
  standalone : bool option;
  base_uri : string option;  (** external property, not part of the text *)
  root : element;
}

(** {1 Construction} *)

val attr : ?prefix:string -> string -> string -> attribute
val elem : ?attrs:attribute list -> ?children:node list -> string -> element
val elem_n : ?attrs:attribute list -> ?children:node list -> Name.t -> element
val text : string -> node
val element : element -> node
val document : ?base_uri:string -> element -> t

(** {1 Observation} *)

val attribute_value : element -> Name.t -> string option
(** First attribute with the given name, if any. *)

val child_elements : element -> element list
(** The element children, in order, skipping text/comments/PIs. *)

val child_elements_named : element -> Name.t -> element list

val first_child_named : element -> Name.t -> element option

val text_content : element -> string
(** Concatenation of all [Text] and [Cdata] descendants, in document
    order — the string-value of the element in XDM terms. *)

val node_count : element -> int
(** Number of element, attribute and text nodes in the subtree rooted
    at the element (the carrier size of the corresponding S-tree). *)

val depth : element -> int
(** Height of the element tree: 1 for a leaf element. *)

val fold_elements : ('a -> element -> 'a) -> 'a -> element -> 'a
(** Pre-order fold over the element and all its element descendants. *)

(** {1 Content equality}

    The relation [=_c] of §8: two documents are content-equal when they
    carry the same information items.  Comments and processing
    instructions are ignored; adjacent text and CDATA nodes are merged;
    attribute order is irrelevant; whitespace-only text nodes between
    elements are ignored when [ignore_whitespace] is set (the default),
    matching the usual treatment of ignorable whitespace in
    element-only content. *)

val equal_content : ?ignore_whitespace:bool -> t -> t -> bool
val equal_element_content : ?ignore_whitespace:bool -> element -> element -> bool

(** {1 Generic equality and printing} *)

val equal_node : node -> node -> bool
val equal_element : element -> element -> bool
val pp_element : Format.formatter -> element -> unit
val pp : Format.formatter -> t -> unit
