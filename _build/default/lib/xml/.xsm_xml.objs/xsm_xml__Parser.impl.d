lib/xml/parser.ml: Buffer Format List Name Option Printf String Tree Uchar
