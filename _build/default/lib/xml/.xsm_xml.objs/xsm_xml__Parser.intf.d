lib/xml/parser.mli: Format Tree
