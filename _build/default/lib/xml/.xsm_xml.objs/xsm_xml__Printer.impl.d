lib/xml/printer.ml: Buffer List Name Option String Tree
