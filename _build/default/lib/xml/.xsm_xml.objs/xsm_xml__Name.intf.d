lib/xml/name.mli: Format Map Set
