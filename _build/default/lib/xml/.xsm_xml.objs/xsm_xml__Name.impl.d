lib/xml/name.ml: Char Format Map Option Printf Set String
