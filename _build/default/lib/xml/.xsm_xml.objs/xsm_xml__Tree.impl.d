lib/xml/tree.ml: Buffer Format List Name String
