type attribute = { name : Name.t; value : string }

type node =
  | Element of element
  | Text of string
  | Cdata of string
  | Comment of string
  | Pi of { target : string; data : string }

and element = {
  name : Name.t;
  attributes : attribute list;
  children : node list;
}

type t = {
  version : string;
  encoding : string option;
  standalone : bool option;
  base_uri : string option;
  root : element;
}

let attr ?prefix name value = { name = Name.make ?prefix name; value }
let elem_n ?(attrs = []) ?(children = []) name = { name; attributes = attrs; children }
let elem ?attrs ?children name = elem_n ?attrs ?children (Name.local name)
let text s = Text s
let element e = Element e

let document ?base_uri root =
  { version = "1.0"; encoding = None; standalone = None; base_uri; root }

let attribute_value e name =
  List.find_map
    (fun (a : attribute) -> if Name.equal a.name name then Some a.value else None)
    e.attributes

let child_elements e =
  List.filter_map (function Element c -> Some c | Text _ | Cdata _ | Comment _ | Pi _ -> None) e.children

let child_elements_named e name =
  List.filter (fun c -> Name.equal c.name name) (child_elements e)

let first_child_named e name =
  List.find_opt (fun c -> Name.equal c.name name) (child_elements e)

let text_content e =
  let buf = Buffer.create 64 in
  let rec go e =
    List.iter
      (function
        | Text s | Cdata s -> Buffer.add_string buf s
        | Element c -> go c
        | Comment _ | Pi _ -> ())
      e.children
  in
  go e;
  Buffer.contents buf

let node_count e =
  let rec go acc e =
    let acc = acc + 1 + List.length e.attributes in
    List.fold_left
      (fun acc -> function
        | Element c -> go acc c
        | Text _ | Cdata _ -> acc + 1
        | Comment _ | Pi _ -> acc)
      acc e.children
  in
  go 0 e

let depth e =
  let rec go e =
    match child_elements e with
    | [] -> 1
    | cs -> 1 + List.fold_left (fun m c -> max m (go c)) 0 cs
  in
  go e

let fold_elements f init e =
  let rec go acc e =
    let acc = f acc e in
    List.fold_left
      (fun acc -> function
        | Element c -> go acc c
        | Text _ | Cdata _ | Comment _ | Pi _ -> acc)
      acc e.children
  in
  go init e

(* ------------------------------------------------------------------ *)
(* Content equality                                                    *)

let is_whitespace s = String.for_all (fun c -> c = ' ' || c = '\t' || c = '\n' || c = '\r') s

(* Normalized children: drop comments/PIs, merge adjacent text/CDATA,
   optionally drop whitespace-only runs.  The result alternates
   elements and non-empty text. *)
type norm = N_elem of element | N_text of string

let normalize_children ~ignore_whitespace children =
  let flush buf acc =
    if Buffer.length buf = 0 then acc
    else begin
      let s = Buffer.contents buf in
      Buffer.clear buf;
      if ignore_whitespace && is_whitespace s then acc else N_text s :: acc
    end
  in
  let buf = Buffer.create 16 in
  let acc =
    List.fold_left
      (fun acc n ->
        match n with
        | Text s | Cdata s ->
          Buffer.add_string buf s;
          acc
        | Element e -> N_elem e :: flush buf acc
        | Comment _ | Pi _ -> acc)
      [] children
  in
  List.rev (flush buf acc)

let sort_attributes (attrs : attribute list) =
  List.sort (fun (a : attribute) (b : attribute) -> Name.compare a.name b.name) attrs

let equal_attribute (a : attribute) (b : attribute) =
  Name.equal a.name b.name && String.equal a.value b.value

let rec equal_element_content ?(ignore_whitespace = true) (a : element) (b : element) =
  Name.equal a.name b.name
  && List.equal equal_attribute (sort_attributes a.attributes) (sort_attributes b.attributes)
  && List.equal
       (fun x y ->
         match x, y with
         | N_text s, N_text t -> String.equal s t
         | N_elem e, N_elem f -> equal_element_content ~ignore_whitespace e f
         | N_text _, N_elem _ | N_elem _, N_text _ -> false)
       (normalize_children ~ignore_whitespace a.children)
       (normalize_children ~ignore_whitespace b.children)

let equal_content ?ignore_whitespace a b =
  equal_element_content ?ignore_whitespace a.root b.root

(* ------------------------------------------------------------------ *)
(* Structural equality and printing                                    *)

let rec equal_node a b =
  match a, b with
  | Element x, Element y -> equal_element x y
  | Text x, Text y | Cdata x, Cdata y | Comment x, Comment y -> String.equal x y
  | Pi x, Pi y -> String.equal x.target y.target && String.equal x.data y.data
  | (Element _ | Text _ | Cdata _ | Comment _ | Pi _), _ -> false

and equal_element a b =
  Name.equal a.name b.name
  && List.equal equal_attribute a.attributes b.attributes
  && List.equal equal_node a.children b.children

let pp_element ppf e = Format.fprintf ppf "<%a/> (%d nodes)" Name.pp e.name (node_count e)
let pp ppf d = pp_element ppf d.root
