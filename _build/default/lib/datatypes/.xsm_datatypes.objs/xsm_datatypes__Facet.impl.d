lib/datatypes/facet.ml: Builtin Char Decimal Format List Printf Regex String Value
