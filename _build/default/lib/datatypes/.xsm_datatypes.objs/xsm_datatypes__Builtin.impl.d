lib/datatypes/builtin.ml: Buffer Calendar Char Decimal Float Format Int32 List Option Printf String Value Xsm_xml
