lib/datatypes/regex.ml: Array Buffer Char Hashtbl List Option Printf String
