lib/datatypes/value.ml: Bool Buffer Calendar Char Decimal Float Format Printf String Xsm_xml
