lib/datatypes/calendar.ml: Buffer Char Decimal Float Format List Printf String
