lib/datatypes/simple_type.ml: Builtin Facet Format List Printf Result String
