lib/datatypes/builtin.mli: Format Value
