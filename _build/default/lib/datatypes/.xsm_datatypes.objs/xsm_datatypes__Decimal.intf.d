lib/datatypes/decimal.mli: Format
