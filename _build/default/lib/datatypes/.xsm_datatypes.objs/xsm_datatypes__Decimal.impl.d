lib/datatypes/decimal.ml: Bytes Char Format Printf String
