lib/datatypes/regex.mli:
