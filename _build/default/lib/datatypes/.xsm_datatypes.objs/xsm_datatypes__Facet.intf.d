lib/datatypes/facet.mli: Builtin Format Regex Value
