lib/datatypes/value.mli: Calendar Decimal Format Xsm_xml
