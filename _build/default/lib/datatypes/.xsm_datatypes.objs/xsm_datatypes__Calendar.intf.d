lib/datatypes/calendar.mli: Decimal Format
