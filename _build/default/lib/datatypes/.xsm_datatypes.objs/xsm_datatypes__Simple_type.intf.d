lib/datatypes/simple_type.mli: Builtin Facet Format Value
