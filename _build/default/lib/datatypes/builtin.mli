(** The built-in types of XML Schema Part 2 (§4 of the paper).

    Covers the special ur-types ([xs:anyType], [xs:anySimpleType],
    [xdt:anyAtomicType], [xdt:untypedAtomic]), the nineteen primitive
    types, and the built-in derived types (the string hierarchy, the
    integer hierarchy, and the three built-in list types).

    Each built-in validates a lexical form into a {!Value.t} after
    applying its whiteSpace facet. *)

type primitive =
  | P_string
  | P_boolean
  | P_decimal
  | P_float
  | P_double
  | P_duration
  | P_date_time
  | P_time
  | P_date
  | P_g_year_month
  | P_g_year
  | P_g_month_day
  | P_g_day
  | P_g_month
  | P_hex_binary
  | P_base64_binary
  | P_any_uri
  | P_qname
  | P_notation

type t =
  (* ur-types *)
  | Any_type
  | Any_simple_type
  | Any_atomic_type
  | Untyped_atomic
  (* primitives *)
  | Primitive of primitive
  (* string-derived *)
  | Normalized_string
  | Token
  | Language
  | Nmtoken
  | Name
  | Ncname
  | Id
  | Idref
  | Entity
  (* decimal-derived *)
  | Integer
  | Non_positive_integer
  | Negative_integer
  | Long
  | Int
  | Short
  | Byte
  | Non_negative_integer
  | Unsigned_long
  | Unsigned_int
  | Unsigned_short
  | Unsigned_byte
  | Positive_integer
  (* built-in list types *)
  | Nmtokens
  | Idrefs
  | Entities

type whitespace = Preserve | Replace | Collapse

val all : t list
(** Every built-in type, ur-types first. *)

val name : t -> string
(** The unprefixed W3C name, e.g. ["nonNegativeInteger"]. *)

val of_name : string -> t option
(** Look a type up by its unprefixed name, or with one of the
    conventional prefixes [xs:], [xsd:] or [xdt:]. *)

val base : t -> t option
(** The base type in the derivation hierarchy; [None] for
    [Any_type]. *)

val derives_from : t -> t -> bool
(** Reflexive-transitive closure of {!base}. *)

val whitespace : t -> whitespace
(** The (fixed or default) whiteSpace facet value. *)

val normalize_whitespace : whitespace -> string -> string

val is_simple : t -> bool
(** Everything except [Any_type]. *)

val is_list : t -> bool
(** The three built-in list types. *)

val primitive_base : t -> primitive option
(** The primitive a (non-list, non-ur) built-in derives from. *)

val validate : t -> string -> (Value.t list, string) result
(** Whitespace-normalize, then map the lexical form to its value.
    Atomic types yield one value; list types yield one value per item;
    [Any_simple_type]/[Any_atomic_type]/[Untyped_atomic] yield an
    untypedAtomic wrapping; [Any_type] accepts anything as
    untypedAtomic. *)

val validate_atomic : t -> string -> (Value.t, string) result
(** Like {!validate} but requires exactly one resulting value. *)

val pp : Format.formatter -> t -> unit
