type t =
  | Builtin of Builtin.t
  | Restriction of restriction
  | List of list_type
  | Union of union_type

and restriction = { name : string option; base : t; facets : Facet.t list }
and list_type = { list_name : string option; item : t }
and union_type = { union_name : string option; members : t list }

let builtin b = Builtin b
let string_type = Builtin (Builtin.Primitive Builtin.P_string)
let boolean = Builtin (Builtin.Primitive Builtin.P_boolean)
let decimal = Builtin (Builtin.Primitive Builtin.P_decimal)
let integer = Builtin Builtin.Integer
let untyped_atomic = Builtin Builtin.Untyped_atomic

let err fmt = Printf.ksprintf (fun s -> Error s) fmt

let rec primitive_of = function
  | Builtin b -> Builtin.primitive_base b
  | Restriction r -> primitive_of r.base
  | List _ | Union _ -> None

let rec is_list_type = function
  | Builtin b -> Builtin.is_list b
  | Restriction r -> is_list_type r.base
  | List _ -> true
  | Union _ -> false

let rec is_atomic = function
  | Builtin b -> (not (Builtin.is_list b)) && Builtin.is_simple b
  | Restriction r -> is_atomic r.base
  | List _ -> false
  | Union _ -> false

let digit_facet = function
  | Facet.Total_digits _ | Facet.Fraction_digits _ -> true
  | _ -> false

let bound_facet = function
  | Facet.Max_inclusive _ | Facet.Max_exclusive _ | Facet.Min_inclusive _
  | Facet.Min_exclusive _ ->
    true
  | _ -> false

let restrict ?name base facets =
  match base with
  | Builtin Builtin.Any_type -> err "cannot restrict xs:anyType into a simple type"
  | _ ->
    let decimal_based =
      match primitive_of base with Some Builtin.P_decimal -> true | None -> false | Some _ -> false
    in
    let bad =
      List.find_opt
        (fun f ->
          (digit_facet f && not decimal_based)
          || (bound_facet f && is_list_type base))
        facets
    in
    (match bad with
    | Some f -> err "facet %s is not applicable to this base type" (Facet.facet_name f)
    | None -> Ok (Restriction { name; base; facets }))

let list_of ?name item =
  if is_atomic item || match item with Union _ -> true | _ -> false then
    Ok (List { list_name = name; item })
  else err "list item type must be atomic or a union"

let union_of ?name members =
  if members = [] then err "union requires at least one member type"
  else Ok (Union { union_name = name; members })

let type_name = function
  | Builtin b -> Some (Builtin.name b)
  | Restriction { name; _ } -> name
  | List { list_name; _ } -> list_name
  | Union { union_name; _ } -> union_name

let rec derives_from t ancestor =
  let structural_eq a b =
    match a, b with
    | Builtin x, Builtin y -> x = y
    | _ -> a == b
  in
  structural_eq t ancestor
  ||
  match t with
  | Builtin b -> (
    match ancestor with
    | Builtin a -> Builtin.derives_from b a
    | _ -> false)
  | Restriction r -> derives_from r.base ancestor
  | List _ | Union _ -> (
    match ancestor with
    | Builtin (Builtin.Any_simple_type | Builtin.Any_type) -> true
    | _ -> false)

let rec whitespace = function
  | Builtin b -> Builtin.whitespace b
  | Restriction r -> (
    let declared =
      List.find_map
        (function Facet.White_space w -> Some w | _ -> None)
        r.facets
    in
    match declared with Some w -> w | None -> whitespace r.base)
  | List _ | Union _ -> Builtin.Collapse

(* Validation runs the derivation chain: find the primitive parse at
   the root, then apply facets from the innermost restriction outward
   (order does not matter for conjunction of constraints). *)
let rec validate ty lexical =
  let normalized = Builtin.normalize_whitespace (whitespace ty) lexical in
  validate_normalized ty normalized

and validate_normalized ty normalized =
  match ty with
  | Builtin b -> Builtin.validate b normalized
  | Restriction r -> (
    match validate_normalized r.base normalized with
    | Error e -> Error e
    | Ok values ->
      let rec apply = function
        | [] -> Ok values
        | f :: rest -> (
          match Facet.check f ~lexical:normalized ~values with
          | Ok () -> apply rest
          | Error e -> Error e)
      in
      apply r.facets)
  | List l ->
    let items = List.filter (fun s -> s <> "") (String.split_on_char ' ' normalized) in
    let rec go acc = function
      | [] -> Ok (List.rev acc)
      | item :: rest -> (
        match validate_normalized l.item item with
        | Ok [ v ] -> go (v :: acc) rest
        | Ok _ -> err "list item %S produced multiple values" item
        | Error e -> Error e)
    in
    go [] items
  | Union u ->
    let rec try_members = function
      | [] -> err "value %S matches no member of the union" normalized
      | m :: rest -> (
        (* each member applies its own whitespace handling *)
        match validate m normalized with
        | Ok v -> Ok v
        | Error _ -> try_members rest)
    in
    try_members u.members

let validate_atomic ty lexical =
  match validate ty lexical with
  | Ok [ v ] -> Ok v
  | Ok vs -> err "expected one atomic value, got %d" (List.length vs)
  | Error e -> Error e

let is_valid ty lexical = Result.is_ok (validate ty lexical)

let rec pp ppf = function
  | Builtin b -> Builtin.pp ppf b
  | Restriction { name = Some n; _ } -> Format.pp_print_string ppf n
  | Restriction { name = None; base; facets } ->
    Format.fprintf ppf "restriction(%a, %d facets)" pp base (List.length facets)
  | List { list_name = Some n; _ } -> Format.pp_print_string ppf n
  | List { list_name = None; item } -> Format.fprintf ppf "list(%a)" pp item
  | Union { union_name = Some n; _ } -> Format.pp_print_string ppf n
  | Union { union_name = None; members } ->
    Format.fprintf ppf "union(%d members)" (List.length members)
