type t =
  | Length of int
  | Min_length of int
  | Max_length of int
  | Pattern of Regex.t
  | Enumeration of Value.t list
  | White_space of Builtin.whitespace
  | Max_inclusive of Value.t
  | Max_exclusive of Value.t
  | Min_inclusive of Value.t
  | Min_exclusive of Value.t
  | Total_digits of int
  | Fraction_digits of int

let facet_name = function
  | Length _ -> "length"
  | Min_length _ -> "minLength"
  | Max_length _ -> "maxLength"
  | Pattern _ -> "pattern"
  | Enumeration _ -> "enumeration"
  | White_space _ -> "whiteSpace"
  | Max_inclusive _ -> "maxInclusive"
  | Max_exclusive _ -> "maxExclusive"
  | Min_inclusive _ -> "minInclusive"
  | Min_exclusive _ -> "minExclusive"
  | Total_digits _ -> "totalDigits"
  | Fraction_digits _ -> "fractionDigits"

let pattern src =
  match Regex.compile src with Ok r -> Ok (Pattern r) | Error e -> Error e

let err fmt = Printf.ksprintf (fun s -> Error s) fmt

(* utf8-aware character count for the string length facets *)
let utf8_length s =
  let n = String.length s in
  let count = ref 0 and i = ref 0 in
  while !i < n do
    let c = Char.code s.[!i] in
    let width =
      if c < 0x80 then 1 else if c < 0xE0 then 2 else if c < 0xF0 then 3 else 4
    in
    incr count;
    i := !i + width
  done;
  !count

let measured_length ~values =
  match values with
  | [ Value.String s ] | [ Value.Untyped_atomic s ] | [ Value.Any_uri s ] ->
    Some (utf8_length s)
  | [ Value.Hex_binary b ] | [ Value.Base64_binary b ] -> Some (String.length b)
  | [ (Value.Qname _ | Value.Notation _) ] -> None (* length has no effect, per spec *)
  | [ _ ] -> None
  | items -> Some (List.length items)

let compare_to ~values bound =
  match values with
  | [ v ] -> Value.compare v bound
  | _ -> None

let check facet ~lexical ~values =
  match facet with
  | White_space _ -> Ok () (* applied before parsing, never fails *)
  | Pattern r ->
    if Regex.matches r lexical then Ok ()
    else err "value %S does not match pattern %S" lexical (Regex.source r)
  | Length n -> (
    match measured_length ~values with
    | Some l when l = n -> Ok ()
    | Some l -> err "length is %d, facet requires %d" l n
    | None -> Ok ())
  | Min_length n -> (
    match measured_length ~values with
    | Some l when l >= n -> Ok ()
    | Some l -> err "length is %d, facet requires at least %d" l n
    | None -> Ok ())
  | Max_length n -> (
    match measured_length ~values with
    | Some l when l <= n -> Ok ()
    | Some l -> err "length is %d, facet allows at most %d" l n
    | None -> Ok ())
  | Enumeration allowed ->
    let matches_one v = List.exists (fun a -> Value.equal a v) allowed in
    if List.for_all matches_one values && values <> [] then Ok ()
    else err "value %S is not among the enumerated values" lexical
  | Max_inclusive b -> (
    match compare_to ~values b with
    | Some c when c <= 0 -> Ok ()
    | Some _ -> err "value %S exceeds maxInclusive %s" lexical (Value.canonical_string b)
    | None -> err "value %S is not comparable with maxInclusive bound" lexical)
  | Max_exclusive b -> (
    match compare_to ~values b with
    | Some c when c < 0 -> Ok ()
    | Some _ -> err "value %S violates maxExclusive %s" lexical (Value.canonical_string b)
    | None -> err "value %S is not comparable with maxExclusive bound" lexical)
  | Min_inclusive b -> (
    match compare_to ~values b with
    | Some c when c >= 0 -> Ok ()
    | Some _ -> err "value %S is below minInclusive %s" lexical (Value.canonical_string b)
    | None -> err "value %S is not comparable with minInclusive bound" lexical)
  | Min_exclusive b -> (
    match compare_to ~values b with
    | Some c when c > 0 -> Ok ()
    | Some _ -> err "value %S violates minExclusive %s" lexical (Value.canonical_string b)
    | None -> err "value %S is not comparable with minExclusive bound" lexical)
  | Total_digits n -> (
    match values with
    | [ Value.Decimal d ] ->
      if Decimal.total_digits d <= n then Ok ()
      else err "%S has more than %d total digits" lexical n
    | _ -> Ok ())
  | Fraction_digits n -> (
    match values with
    | [ Value.Decimal d ] ->
      if Decimal.fraction_digits d <= n then Ok ()
      else err "%S has more than %d fraction digits" lexical n
    | _ -> Ok ())

let pp ppf f = Format.pp_print_string ppf (facet_name f)
