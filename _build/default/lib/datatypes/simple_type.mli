(** User-defined simple types (§4): "a simple type is an atomic type
    or list type or union type or a type derived by restriction from
    another simple type".

    Types form a hierarchy rooted at the built-ins; {!derives_from}
    implements the subtype relation the paper's type hierarchy
    describes. *)

type t =
  | Builtin of Builtin.t
  | Restriction of restriction
  | List of list_type
  | Union of union_type

and restriction = {
  name : string option;  (** None for anonymous types *)
  base : t;
  facets : Facet.t list;
}

and list_type = { list_name : string option; item : t }
and union_type = { union_name : string option; members : t list }

val builtin : Builtin.t -> t
val string_type : t
val boolean : t
val decimal : t
val integer : t
val untyped_atomic : t

val restrict : ?name:string -> t -> Facet.t list -> (t, string) result
(** Derive by restriction.  Fails when the base is [xs:anyType]-like
    (not a simple type) or a facet is inapplicable (length facets on a
    union, digit facets on a non-decimal base). *)

val list_of : ?name:string -> t -> (t, string) result
(** A list type.  The item type must be atomic or a union of atomic
    types (no lists of lists, per the spec). *)

val union_of : ?name:string -> t list -> (t, string) result
(** A union type with at least one member. *)

val type_name : t -> string option
(** The declared name, or the built-in name. *)

val derives_from : t -> t -> bool
(** Reflexive-transitive derivation: restriction steps follow the
    base, list and union types derive from [xs:anySimpleType]. *)

val whitespace : t -> Builtin.whitespace
(** Effective whiteSpace facet: the innermost declared one, or the
    base's. List and union types collapse. *)

val validate : t -> string -> (Value.t list, string) result
(** Validate a lexical form: whitespace-normalize, parse against the
    base primitive, then check every facet on the derivation chain
    (outermost first). Union members are tried in declaration order. *)

val validate_atomic : t -> string -> (Value.t, string) result

val is_valid : t -> string -> bool

val pp : Format.formatter -> t -> unit
