type timezone = int option

let pp_timezone ppf = function
  | None -> ()
  | Some 0 -> Format.pp_print_char ppf 'Z'
  | Some m ->
    let sign = if m < 0 then '-' else '+' in
    let m = abs m in
    Format.fprintf ppf "%c%02d:%02d" sign (m / 60) (m mod 60)

type date_time = {
  year : int;
  month : int;
  day : int;
  hour : int;
  minute : int;
  second : Decimal.t;
  tz : timezone;
}

let is_leap_year y = (y mod 4 = 0 && y mod 100 <> 0) || y mod 400 = 0

let days_in_month ~year ~month =
  match month with
  | 1 | 3 | 5 | 7 | 8 | 10 | 12 -> 31
  | 4 | 6 | 9 | 11 -> 30
  | 2 -> if is_leap_year year then 29 else 28
  | _ -> invalid_arg "days_in_month"

(* Howard Hinnant's days_from_civil, shifted so that 2000-03-01 is day 0. *)
let days_from_civil ~year ~month ~day =
  let y = if month <= 2 then year - 1 else year in
  let era = (if y >= 0 then y else y - 399) / 400 in
  let yoe = y - (era * 400) in
  let mp = (month + 9) mod 12 in
  let doy = ((153 * mp) + 2) / 5 + day - 1 in
  let doe = (yoe * 365) + (yoe / 4) - (yoe / 100) + doy in
  (era * 146097) + doe - 730485

(* ------------------------------------------------------------------ *)
(* Lexical scanning                                                    *)

type scan = { s : string; mutable i : int }

exception Bad of string

let fail msg = raise (Bad msg)
let left sc = String.length sc.s - sc.i
let peek sc = if sc.i < String.length sc.s then sc.s.[sc.i] else '\255'

let lit sc c =
  if peek sc = c then sc.i <- sc.i + 1
  else fail (Printf.sprintf "expected %C in %S" c sc.s)

let digits sc n =
  if left sc < n then fail "truncated number";
  let v = ref 0 in
  for k = sc.i to sc.i + n - 1 do
    let c = sc.s.[k] in
    if c < '0' || c > '9' then fail "expected digit";
    v := (!v * 10) + Char.code c - Char.code '0'
  done;
  sc.i <- sc.i + n;
  !v

(* year: optional '-', at least 4 digits, no leading zero beyond 4. *)
let scan_year sc =
  let neg = peek sc = '-' in
  if neg then sc.i <- sc.i + 1;
  let start = sc.i in
  while peek sc >= '0' && peek sc <= '9' do
    sc.i <- sc.i + 1
  done;
  let len = sc.i - start in
  if len < 4 then fail "year must have at least 4 digits";
  if len > 4 && sc.s.[start] = '0' then fail "year has leading zero";
  let v = int_of_string (String.sub sc.s start len) in
  if v = 0 then fail "year 0000 is not allowed";
  if neg then -v else v

let scan_seconds sc =
  let start = sc.i in
  let d1 = digits sc 2 in
  ignore d1;
  if peek sc = '.' then begin
    sc.i <- sc.i + 1;
    if not (peek sc >= '0' && peek sc <= '9') then fail "empty fractional seconds";
    while peek sc >= '0' && peek sc <= '9' do
      sc.i <- sc.i + 1
    done
  end;
  let str = String.sub sc.s start (sc.i - start) in
  match Decimal.of_string str with
  | Ok d ->
    if Decimal.compare d (Decimal.of_int 60) >= 0 then fail "seconds >= 60";
    d
  | Error e -> fail e

let scan_timezone sc =
  match peek sc with
  | 'Z' ->
    sc.i <- sc.i + 1;
    Some 0
  | ('+' | '-') as c ->
    sc.i <- sc.i + 1;
    let h = digits sc 2 in
    lit sc ':';
    let m = digits sc 2 in
    if h > 14 || m > 59 || (h = 14 && m > 0) then fail "timezone out of range";
    let v = (h * 60) + m in
    Some (if c = '-' then -v else v)
  | _ -> None

let finish sc v = if sc.i <> String.length sc.s then fail "trailing characters" else v

let check_month m = if m < 1 || m > 12 then fail "month out of range" else m

let check_day ~year ~month d =
  if d < 1 || d > days_in_month ~year ~month then fail "day out of range" else d

let check_hm h m =
  if h > 23 then fail "hour out of range";
  if m > 59 then fail "minute out of range";
  (h, m)

let run s f =
  let sc = { s; i = 0 } in
  match f sc with v -> Ok v | exception Bad m -> Error m

let ref_dt =
  { year = 2000; month = 1; day = 1; hour = 0; minute = 0; second = Decimal.zero; tz = None }

(* ------------------------------------------------------------------ *)
(* dateTime                                                            *)

let parse_date_time s =
  run s (fun sc ->
      let year = scan_year sc in
      lit sc '-';
      let month = check_month (digits sc 2) in
      lit sc '-';
      let day = check_day ~year ~month (digits sc 2) in
      lit sc 'T';
      let hour = digits sc 2 in
      lit sc ':';
      let minute = digits sc 2 in
      let hour, minute = check_hm hour minute in
      lit sc ':';
      let second = scan_seconds sc in
      let tz = scan_timezone sc in
      finish sc { year; month; day; hour; minute; second; tz })

let print_year y = if y < 0 then Printf.sprintf "-%04d" (-y) else Printf.sprintf "%04d" y

let print_seconds d =
  let s = Decimal.to_string d in
  match String.index_opt s '.' with
  | Some i when i = 1 -> "0" ^ s
  | None when String.length s = 1 -> "0" ^ s
  | _ -> s

let tz_string tz = Format.asprintf "%a" pp_timezone tz

let print_date_time dt =
  Printf.sprintf "%s-%02d-%02dT%02d:%02d:%s%s" (print_year dt.year) dt.month dt.day
    dt.hour dt.minute (print_seconds dt.second) (tz_string dt.tz)

let epoch_seconds dt =
  let days = days_from_civil ~year:dt.year ~month:dt.month ~day:dt.day + 61 in
  (* +61 realigns internal epoch 2000-03-01 to 2000-01-01 *)
  let tz_min = match dt.tz with None -> 0 | Some m -> m in
  let whole = ((((days * 24) + dt.hour) * 60) + dt.minute - tz_min) * 60 in
  Decimal.add (Decimal.of_int whole) dt.second

let compare_date_time a b = Decimal.compare (epoch_seconds a) (epoch_seconds b)

(* ------------------------------------------------------------------ *)
(* Partial date/time types                                             *)

type date = date_time
type time = date_time
type g_year_month = date_time
type g_year = date_time
type g_month_day = date_time
type g_day = date_time
type g_month = date_time

let parse_date s =
  run s (fun sc ->
      let year = scan_year sc in
      lit sc '-';
      let month = check_month (digits sc 2) in
      lit sc '-';
      let day = check_day ~year ~month (digits sc 2) in
      let tz = scan_timezone sc in
      finish sc { ref_dt with year; month; day; tz })

let print_date dt =
  Printf.sprintf "%s-%02d-%02d%s" (print_year dt.year) dt.month dt.day (tz_string dt.tz)

let compare_date = compare_date_time

let parse_time s =
  run s (fun sc ->
      let hour = digits sc 2 in
      lit sc ':';
      let minute = digits sc 2 in
      let hour, minute = check_hm hour minute in
      lit sc ':';
      let second = scan_seconds sc in
      let tz = scan_timezone sc in
      finish sc { ref_dt with hour; minute; second; tz })

let print_time dt =
  Printf.sprintf "%02d:%02d:%s%s" dt.hour dt.minute (print_seconds dt.second) (tz_string dt.tz)

let compare_time = compare_date_time

let parse_g_year_month s =
  run s (fun sc ->
      let year = scan_year sc in
      lit sc '-';
      let month = check_month (digits sc 2) in
      let tz = scan_timezone sc in
      finish sc { ref_dt with year; month; tz })

let print_g_year_month dt = Printf.sprintf "%s-%02d%s" (print_year dt.year) dt.month (tz_string dt.tz)

let parse_g_year s =
  run s (fun sc ->
      let year = scan_year sc in
      let tz = scan_timezone sc in
      finish sc { ref_dt with year; tz })

let print_g_year dt = Printf.sprintf "%s%s" (print_year dt.year) (tz_string dt.tz)

let parse_g_month_day s =
  run s (fun sc ->
      lit sc '-';
      lit sc '-';
      let month = check_month (digits sc 2) in
      lit sc '-';
      let day = check_day ~year:2000 ~month (digits sc 2) in
      let tz = scan_timezone sc in
      finish sc { ref_dt with month; day; tz })

let print_g_month_day dt = Printf.sprintf "--%02d-%02d%s" dt.month dt.day (tz_string dt.tz)

let parse_g_day s =
  run s (fun sc ->
      lit sc '-';
      lit sc '-';
      lit sc '-';
      let day = check_day ~year:2000 ~month:1 (digits sc 2) in
      let tz = scan_timezone sc in
      finish sc { ref_dt with day; tz })

let print_g_day dt = Printf.sprintf "---%02d%s" dt.day (tz_string dt.tz)

let parse_g_month s =
  run s (fun sc ->
      lit sc '-';
      lit sc '-';
      let month = check_month (digits sc 2) in
      let tz = scan_timezone sc in
      finish sc { ref_dt with month; tz })

let print_g_month dt = Printf.sprintf "--%02d%s" dt.month (tz_string dt.tz)

(* ------------------------------------------------------------------ *)
(* Durations                                                           *)

type duration = { negative : bool; months : int; seconds : Decimal.t }

let parse_duration s =
  run s (fun sc ->
      let negative = peek sc = '-' in
      if negative then sc.i <- sc.i + 1;
      lit sc 'P';
      let scan_number () =
        let start = sc.i in
        while peek sc >= '0' && peek sc <= '9' do
          sc.i <- sc.i + 1
        done;
        if sc.i = start then fail "expected number in duration";
        int_of_string (String.sub sc.s start (sc.i - start))
      in
      let months = ref 0 and seconds = ref Decimal.zero and any = ref false in
      (* date part: Y, M, D in order, each optional *)
      let rec date_part allowed =
        if peek sc <> 'T' && peek sc <> '\255' then begin
          let n = scan_number () in
          match peek sc with
          | 'Y' when List.mem 'Y' allowed ->
            sc.i <- sc.i + 1;
            months := !months + (n * 12);
            any := true;
            date_part (List.filter (fun c -> c = 'M' || c = 'D') allowed)
          | 'M' when List.mem 'M' allowed ->
            sc.i <- sc.i + 1;
            months := !months + n;
            any := true;
            date_part [ 'D' ]
          | 'D' when List.mem 'D' allowed ->
            sc.i <- sc.i + 1;
            seconds := Decimal.add !seconds (Decimal.of_int (n * 86400));
            any := true
          | _ -> fail "malformed duration date part"
        end
      in
      date_part [ 'Y'; 'M'; 'D' ];
      if peek sc = 'T' then begin
        sc.i <- sc.i + 1;
        if peek sc = '\255' then fail "empty time part in duration";
        let rec time_part allowed =
          if peek sc <> '\255' then begin
            (* seconds may be decimal *)
            let start = sc.i in
            while (peek sc >= '0' && peek sc <= '9') || peek sc = '.' do
              sc.i <- sc.i + 1
            done;
            if sc.i = start then fail "expected number in duration";
            let text = String.sub sc.s start (sc.i - start) in
            match peek sc with
            | 'H' when List.mem 'H' allowed && not (String.contains text '.') ->
              sc.i <- sc.i + 1;
              seconds := Decimal.add !seconds (Decimal.of_int (int_of_string text * 3600));
              any := true;
              time_part [ 'M'; 'S' ]
            | 'M' when List.mem 'M' allowed && not (String.contains text '.') ->
              sc.i <- sc.i + 1;
              seconds := Decimal.add !seconds (Decimal.of_int (int_of_string text * 60));
              any := true;
              time_part [ 'S' ]
            | 'S' when List.mem 'S' allowed ->
              sc.i <- sc.i + 1;
              (match Decimal.of_string text with
              | Ok d ->
                seconds := Decimal.add !seconds d;
                any := true
              | Error e -> fail e)
            | _ -> fail "malformed duration time part"
          end
        in
        time_part [ 'H'; 'M'; 'S' ]
      end;
      if not !any then fail "duration must have at least one component";
      let negative = if !months = 0 && Decimal.sign !seconds = 0 then false else negative in
      finish sc { negative; months = !months; seconds = !seconds })

let print_duration d =
  if d.months = 0 && Decimal.sign d.seconds = 0 then "PT0S"
  else begin
    let buf = Buffer.create 16 in
    if d.negative then Buffer.add_char buf '-';
    Buffer.add_char buf 'P';
    let years = d.months / 12 and months = d.months mod 12 in
    if years > 0 then Buffer.add_string buf (string_of_int years ^ "Y");
    if months > 0 then Buffer.add_string buf (string_of_int months ^ "M");
    (* split seconds into D/H/M/S using integer division on the whole part *)
    let total = d.seconds in
    let day_sec = Decimal.of_int 86400 in
    let rec count_units value unit =
      if Decimal.compare value unit >= 0 then
        let n, rest = count_units (Decimal.sub value unit) unit in
        (n + 1, rest)
      else (0, value)
    in
    (* count_units is linear; days can be large, so divide via ints when exact *)
    let days, rem =
      match Decimal.to_int total with
      | Some n -> (n / 86400, Decimal.of_int (n mod 86400))
      | None ->
        (* fractional seconds: pull out the whole part via float guess then fix *)
        count_units total day_sec
    in
    let hours, rem =
      match Decimal.to_int rem with
      | Some n -> (n / 3600, Decimal.of_int (n mod 3600))
      | None -> count_units rem (Decimal.of_int 3600)
    in
    let minutes, rem =
      match Decimal.to_int rem with
      | Some n -> (n / 60, Decimal.of_int (n mod 60))
      | None -> count_units rem (Decimal.of_int 60)
    in
    if days > 0 then Buffer.add_string buf (string_of_int days ^ "D");
    if hours > 0 || minutes > 0 || Decimal.sign rem <> 0 then begin
      Buffer.add_char buf 'T';
      if hours > 0 then Buffer.add_string buf (string_of_int hours ^ "H");
      if minutes > 0 then Buffer.add_string buf (string_of_int minutes ^ "M");
      if Decimal.sign rem <> 0 then Buffer.add_string buf (Decimal.to_string rem ^ "S")
    end;
    Buffer.contents buf
  end

let add_duration dt dur =
  let sign = if dur.negative then -1 else 1 in
  (* months first, clamping the day *)
  let total_months = ((dt.year * 12) + dt.month - 1) + (sign * dur.months) in
  let year = if total_months >= 0 then total_months / 12 else ((total_months + 1) / 12) - 1 in
  let month = total_months - (year * 12) + 1 in
  let day = min dt.day (days_in_month ~year ~month) in
  (* then seconds on the timeline *)
  let base = { dt with year; month; day } in
  let total = Decimal.add (epoch_seconds base) (if dur.negative then Decimal.negate dur.seconds else dur.seconds) in
  (* rebuild a date_time from epoch seconds, keeping the original tz *)
  let tz_min = match dt.tz with None -> 0 | Some m -> m in
  let shifted = Decimal.add total (Decimal.of_int (tz_min * 60)) in
  let whole, frac =
    match Decimal.to_int shifted with
    | Some n -> (n, Decimal.zero)
    | None ->
      (* floor to the integer second, keep the fraction *)
      let f = Decimal.to_float shifted in
      let w = int_of_float (Float.round (floor f)) in
      (w, Decimal.sub shifted (Decimal.of_int w))
  in
  let days = if whole >= 0 then whole / 86400 else ((whole + 1) / 86400) - 1 in
  let secs = whole - (days * 86400) in
  let hour = secs / 3600 in
  let minute = secs mod 3600 / 60 in
  let second = Decimal.add (Decimal.of_int (secs mod 60)) frac in
  (* civil_from_days, inverse of days_from_civil (internal epoch day 0 = 2000-03-01) *)
  let z = days - 61 + 730485 in
  let era = (if z >= 0 then z else z - 146096) / 146097 in
  let doe = z - (era * 146097) in
  let yoe = (doe - (doe / 1460) + (doe / 36524) - (doe / 146096)) / 365 in
  let y = yoe + (era * 400) in
  let doy = doe - ((365 * yoe) + (yoe / 4) - (yoe / 100)) in
  let mp = ((5 * doy) + 2) / 153 in
  let day = doy - (((153 * mp) + 2) / 5) + 1 in
  let month = if mp < 10 then mp + 3 else mp - 9 in
  let year = if month <= 2 then y + 1 else y in
  { year; month; day; hour; minute; second; tz = dt.tz }

let reference_points =
  [ (1696, 9); (1697, 2); (1903, 3); (1903, 7) ]
  |> List.map (fun (year, month) -> { ref_dt with year; month; tz = Some 0 })

let compare_duration a b =
  let outcomes =
    List.map
      (fun r -> compare_date_time (add_duration r a) (add_duration r b))
      reference_points
  in
  match outcomes with
  | [] -> None
  | first :: rest ->
    let sgn x = compare x 0 in
    if List.for_all (fun o -> sgn o = sgn first) rest then Some (sgn first) else None

let equal_duration a b = compare_duration a b = Some 0
