(** Value spaces of the date/time primitive types of XML Schema Part 2:
    [dateTime], [date], [time], [gYearMonth], [gYear], [gMonthDay],
    [gDay], [gMonth] and [duration].

    Timezones are minute offsets from UTC in [-840, 840]; a missing
    timezone makes comparison with a zoned value follow the W3C ±14h
    rule only approximately — we adopt the common simplification of
    treating unzoned values as UTC and document it in DESIGN.md.
    Durations compare by the four-reference-dateTime method of the
    spec, so the order is partial ([compare] returns an option). *)

type timezone = int option
(** Offset from UTC in minutes, [Some 0] for ["Z"], [None] if absent. *)

val pp_timezone : Format.formatter -> timezone -> unit

type date_time = {
  year : int;  (** may be negative; 0 is not a valid year in XSD 1.0 *)
  month : int;  (** 1..12 *)
  day : int;  (** 1..31, checked against the month *)
  hour : int;  (** 0..23, or 24 only with 00:00 (normalized away) *)
  minute : int;  (** 0..59 *)
  second : Decimal.t;  (** 0 <= s < 60; fractional seconds allowed *)
  tz : timezone;
}

val parse_date_time : string -> (date_time, string) result
val print_date_time : date_time -> string
val compare_date_time : date_time -> date_time -> int
val epoch_seconds : date_time -> Decimal.t
(** Seconds since 2000-01-01T00:00:00Z on the proleptic Gregorian
    timeline, timezone applied — the comparison key. *)

(** Partial date types share the [date_time] record; absent fields hold
    their reference values and are ignored by printing/comparison. *)

type date = date_time  (** hour/minute/second fixed at 0 *)

val parse_date : string -> (date, string) result
val print_date : date -> string
val compare_date : date -> date -> int

type time = date_time  (** year/month/day fixed at reference 2000-01-01 *)

val parse_time : string -> (time, string) result
val print_time : time -> string
val compare_time : time -> time -> int

type g_year_month = date_time

val parse_g_year_month : string -> (g_year_month, string) result
val print_g_year_month : g_year_month -> string

type g_year = date_time

val parse_g_year : string -> (g_year, string) result
val print_g_year : g_year -> string

type g_month_day = date_time

val parse_g_month_day : string -> (g_month_day, string) result
val print_g_month_day : g_month_day -> string

type g_day = date_time

val parse_g_day : string -> (g_day, string) result
val print_g_day : g_day -> string

type g_month = date_time

val parse_g_month : string -> (g_month, string) result
val print_g_month : g_month -> string

(** {1 Durations} *)

type duration = {
  negative : bool;
  months : int;  (** years folded in: Y*12 + M *)
  seconds : Decimal.t;  (** days/hours/minutes folded into seconds *)
}

val parse_duration : string -> (duration, string) result
val print_duration : duration -> string

val compare_duration : duration -> duration -> int option
(** [None] when the durations are incomparable (the four reference
    dateTimes disagree), per the spec's partial order. *)

val equal_duration : duration -> duration -> bool

val add_duration : date_time -> duration -> date_time
(** Calendar addition per Appendix E of XML Schema Part 2: months are
    added first with day-of-month clamping, then the seconds. *)

(** {1 Calendar helpers} *)

val is_leap_year : int -> bool
val days_in_month : year:int -> month:int -> int

val days_from_civil : year:int -> month:int -> day:int -> int
(** Day number on the proleptic Gregorian calendar with day 0 =
    2000-03-01 (internal epoch chosen to simplify leap handling). *)
