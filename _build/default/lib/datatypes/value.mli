(** The atomic value space of the data model (§4).

    A value of this type is what the [typed-value] accessor returns:
    an instance of [xdt:anyAtomicType].  Sequences of atomic values are
    plain OCaml lists at the API level. *)

type t =
  | String of string
  | Boolean of bool
  | Decimal of Decimal.t  (** also carries all derived integer types *)
  | Float of float  (** single precision: rounded through Int32 bits *)
  | Double of float
  | Duration of Calendar.duration
  | Date_time of Calendar.date_time
  | Time of Calendar.time
  | Date of Calendar.date
  | G_year_month of Calendar.g_year_month
  | G_year of Calendar.g_year
  | G_month_day of Calendar.g_month_day
  | G_day of Calendar.g_day
  | G_month of Calendar.g_month
  | Hex_binary of string  (** decoded octets *)
  | Base64_binary of string  (** decoded octets *)
  | Any_uri of string
  | Qname of Xsm_xml.Name.t
  | Notation of Xsm_xml.Name.t
  | Untyped_atomic of string

val equal : t -> t -> bool
(** Value equality within a primitive type; values of different
    primitive types are never equal (except that [equal] follows the
    numeric promotion decimal/float/double used by XPath [eq]). *)

val compare : t -> t -> int option
(** Order when the values are comparable: same primitive family and
    the family is ordered.  [None] otherwise (e.g. QNames, or
    incomparable durations). *)

val canonical_string : t -> string
(** Canonical lexical representation per XML Schema Part 2. *)

val pp : Format.formatter -> t -> unit

val kind_name : t -> string
(** The primitive type name the value belongs to, e.g. ["decimal"]. *)
