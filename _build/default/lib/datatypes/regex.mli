(** XML Schema regular expressions (Appendix F of Part 2), used by the
    [pattern] facet.

    The dialect differs from PCRE: patterns are implicitly anchored at
    both ends, there are no back-references and no non-greedy
    quantifiers.  Supported constructs: alternation [|], concatenation,
    quantifiers [?], [*], [+], [{n}], [{n,}], [{n,m}], groups [( )],
    the wildcard [.] (anything but newline), character classes
    [[a-z]], negated classes [[^...]], class subtraction
    [[a-z-[aeiou]]], and the multi-character escapes [\s \S \d \D \w
    \W \i \I \c \C] plus single-character escapes.

    Matching is by Thompson NFA simulation: linear in pattern times
    input, no backtracking blow-up. *)

type t

val compile : string -> (t, string) result
(** Parse and compile a pattern.  Errors describe the syntax problem. *)

val matches : t -> string -> bool
(** Whole-string match (XSD patterns are anchored). *)

val source : t -> string
(** The original pattern text. *)
