type primitive =
  | P_string
  | P_boolean
  | P_decimal
  | P_float
  | P_double
  | P_duration
  | P_date_time
  | P_time
  | P_date
  | P_g_year_month
  | P_g_year
  | P_g_month_day
  | P_g_day
  | P_g_month
  | P_hex_binary
  | P_base64_binary
  | P_any_uri
  | P_qname
  | P_notation

type t =
  | Any_type
  | Any_simple_type
  | Any_atomic_type
  | Untyped_atomic
  | Primitive of primitive
  | Normalized_string
  | Token
  | Language
  | Nmtoken
  | Name
  | Ncname
  | Id
  | Idref
  | Entity
  | Integer
  | Non_positive_integer
  | Negative_integer
  | Long
  | Int
  | Short
  | Byte
  | Non_negative_integer
  | Unsigned_long
  | Unsigned_int
  | Unsigned_short
  | Unsigned_byte
  | Positive_integer
  | Nmtokens
  | Idrefs
  | Entities

type whitespace = Preserve | Replace | Collapse

let primitives =
  [ P_string; P_boolean; P_decimal; P_float; P_double; P_duration; P_date_time; P_time;
    P_date; P_g_year_month; P_g_year; P_g_month_day; P_g_day; P_g_month; P_hex_binary;
    P_base64_binary; P_any_uri; P_qname; P_notation ]

let all =
  [ Any_type; Any_simple_type; Any_atomic_type; Untyped_atomic ]
  @ List.map (fun p -> Primitive p) primitives
  @ [ Normalized_string; Token; Language; Nmtoken; Name; Ncname; Id; Idref; Entity;
      Integer; Non_positive_integer; Negative_integer; Long; Int; Short; Byte;
      Non_negative_integer; Unsigned_long; Unsigned_int; Unsigned_short; Unsigned_byte;
      Positive_integer; Nmtokens; Idrefs; Entities ]

let primitive_name = function
  | P_string -> "string"
  | P_boolean -> "boolean"
  | P_decimal -> "decimal"
  | P_float -> "float"
  | P_double -> "double"
  | P_duration -> "duration"
  | P_date_time -> "dateTime"
  | P_time -> "time"
  | P_date -> "date"
  | P_g_year_month -> "gYearMonth"
  | P_g_year -> "gYear"
  | P_g_month_day -> "gMonthDay"
  | P_g_day -> "gDay"
  | P_g_month -> "gMonth"
  | P_hex_binary -> "hexBinary"
  | P_base64_binary -> "base64Binary"
  | P_any_uri -> "anyURI"
  | P_qname -> "QName"
  | P_notation -> "NOTATION"

let name = function
  | Any_type -> "anyType"
  | Any_simple_type -> "anySimpleType"
  | Any_atomic_type -> "anyAtomicType"
  | Untyped_atomic -> "untypedAtomic"
  | Primitive p -> primitive_name p
  | Normalized_string -> "normalizedString"
  | Token -> "token"
  | Language -> "language"
  | Nmtoken -> "NMTOKEN"
  | Name -> "Name"
  | Ncname -> "NCName"
  | Id -> "ID"
  | Idref -> "IDREF"
  | Entity -> "ENTITY"
  | Integer -> "integer"
  | Non_positive_integer -> "nonPositiveInteger"
  | Negative_integer -> "negativeInteger"
  | Long -> "long"
  | Int -> "int"
  | Short -> "short"
  | Byte -> "byte"
  | Non_negative_integer -> "nonNegativeInteger"
  | Unsigned_long -> "unsignedLong"
  | Unsigned_int -> "unsignedInt"
  | Unsigned_short -> "unsignedShort"
  | Unsigned_byte -> "unsignedByte"
  | Positive_integer -> "positiveInteger"
  | Nmtokens -> "NMTOKENS"
  | Idrefs -> "IDREFS"
  | Entities -> "ENTITIES"

let by_name = List.map (fun t -> (name t, t)) all

let of_name s =
  let local =
    match String.index_opt s ':' with
    | Some i -> (
      match String.sub s 0 i with
      | "xs" | "xsd" | "xdt" -> Some (String.sub s (i + 1) (String.length s - i - 1))
      | _ -> None)
    | None -> Some s
  in
  Option.bind local (fun l -> List.assoc_opt l by_name)

let base = function
  | Any_type -> None
  | Any_simple_type -> Some Any_type
  | Any_atomic_type -> Some Any_simple_type
  | Untyped_atomic -> Some Any_atomic_type
  | Primitive _ -> Some Any_atomic_type
  | Normalized_string -> Some (Primitive P_string)
  | Token -> Some Normalized_string
  | Language -> Some Token
  | Nmtoken -> Some Token
  | Name -> Some Token
  | Ncname -> Some Name
  | Id -> Some Ncname
  | Idref -> Some Ncname
  | Entity -> Some Ncname
  | Integer -> Some (Primitive P_decimal)
  | Non_positive_integer -> Some Integer
  | Negative_integer -> Some Non_positive_integer
  | Long -> Some Integer
  | Int -> Some Long
  | Short -> Some Int
  | Byte -> Some Short
  | Non_negative_integer -> Some Integer
  | Unsigned_long -> Some Non_negative_integer
  | Unsigned_int -> Some Unsigned_long
  | Unsigned_short -> Some Unsigned_int
  | Unsigned_byte -> Some Unsigned_short
  | Positive_integer -> Some Non_negative_integer
  | Nmtokens -> Some Any_simple_type
  | Idrefs -> Some Any_simple_type
  | Entities -> Some Any_simple_type

let rec derives_from t ancestor =
  t = ancestor || match base t with None -> false | Some b -> derives_from b ancestor

let whitespace = function
  | Primitive P_string | Any_type | Any_simple_type | Any_atomic_type | Untyped_atomic ->
    Preserve
  | Normalized_string -> Replace
  | Primitive _ | Token | Language | Nmtoken | Name | Ncname | Id | Idref | Entity
  | Integer | Non_positive_integer | Negative_integer | Long | Int | Short | Byte
  | Non_negative_integer | Unsigned_long | Unsigned_int | Unsigned_short | Unsigned_byte
  | Positive_integer | Nmtokens | Idrefs | Entities ->
    Collapse

let replace_ws s = String.map (function '\t' | '\n' | '\r' -> ' ' | c -> c) s

let collapse_ws s =
  let s = replace_ws s in
  let buf = Buffer.create (String.length s) in
  let pending = ref false and started = ref false in
  String.iter
    (fun c ->
      if c = ' ' then begin
        if !started then pending := true
      end
      else begin
        if !pending then Buffer.add_char buf ' ';
        pending := false;
        started := true;
        Buffer.add_char buf c
      end)
    s;
  Buffer.contents buf

let normalize_whitespace ws s =
  match ws with Preserve -> s | Replace -> replace_ws s | Collapse -> collapse_ws s

let is_simple = function Any_type -> false | _ -> true
let is_list = function Nmtokens | Idrefs | Entities -> true | _ -> false

let primitive_base t =
  let rec go t = match t with Primitive p -> Some p | _ -> Option.bind (base t) go in
  match t with
  | Any_type | Any_simple_type | Any_atomic_type | Untyped_atomic | Nmtokens | Idrefs
  | Entities ->
    None
  | _ -> go t

(* ------------------------------------------------------------------ *)
(* Primitive lexical mappings                                          *)

let err fmt = Printf.ksprintf (fun s -> Error s) fmt

let parse_boolean s =
  match s with
  | "true" | "1" -> Ok (Value.Boolean true)
  | "false" | "0" -> Ok (Value.Boolean false)
  | _ -> err "invalid boolean %S" s

let float_pattern_ok s =
  (* optional sign, digits with optional fraction, optional exponent *)
  let n = String.length s in
  if n = 0 then false
  else begin
    let i = ref 0 in
    if s.[0] = '+' || s.[0] = '-' then incr i;
    let digits_from j =
      let k = ref j in
      while !k < n && s.[!k] >= '0' && s.[!k] <= '9' do
        incr k
      done;
      !k
    in
    let after_int = digits_from !i in
    let had_int = after_int > !i in
    let j = ref after_int in
    let had_frac =
      if !j < n && s.[!j] = '.' then begin
        let k = digits_from (!j + 1) in
        let ok = k > !j + 1 in
        j := k;
        ok
      end
      else false
    in
    if (not had_int) && not had_frac then false
    else if !j = n then true
    else if s.[!j] = 'e' || s.[!j] = 'E' then begin
      incr j;
      if !j < n && (s.[!j] = '+' || s.[!j] = '-') then incr j;
      let k = digits_from !j in
      k > !j && k = n
    end
    else false
  end

let parse_floating ~single s =
  match s with
  | "INF" -> Ok (if single then Value.Float Float.infinity else Value.Double Float.infinity)
  | "-INF" ->
    Ok (if single then Value.Float Float.neg_infinity else Value.Double Float.neg_infinity)
  | "NaN" -> Ok (if single then Value.Float Float.nan else Value.Double Float.nan)
  | _ ->
    if float_pattern_ok s then begin
      let f = float_of_string s in
      if single then Ok (Value.Float (Int32.float_of_bits (Int32.bits_of_float f)))
      else Ok (Value.Double f)
    end
    else err "invalid floating-point literal %S" s

let hex_value c =
  match c with
  | '0' .. '9' -> Some (Char.code c - Char.code '0')
  | 'a' .. 'f' -> Some (Char.code c - Char.code 'a' + 10)
  | 'A' .. 'F' -> Some (Char.code c - Char.code 'A' + 10)
  | _ -> None

let parse_hex_binary s =
  let n = String.length s in
  if n mod 2 <> 0 then err "hexBinary %S has odd length" s
  else begin
    let buf = Buffer.create (n / 2) in
    let ok = ref true in
    let i = ref 0 in
    while !ok && !i < n do
      match hex_value s.[!i], hex_value s.[!i + 1] with
      | Some hi, Some lo ->
        Buffer.add_char buf (Char.chr ((hi lsl 4) lor lo));
        i := !i + 2
      | _ -> ok := false
    done;
    if !ok then Ok (Value.Hex_binary (Buffer.contents buf)) else err "invalid hexBinary %S" s
  end

let base64_value c =
  match c with
  | 'A' .. 'Z' -> Some (Char.code c - Char.code 'A')
  | 'a' .. 'z' -> Some (Char.code c - Char.code 'a' + 26)
  | '0' .. '9' -> Some (Char.code c - Char.code '0' + 52)
  | '+' -> Some 62
  | '/' -> Some 63
  | _ -> None

let parse_base64_binary s =
  (* the lexical space allows single spaces between groups; collapse removed
     the outer ones, remove the rest *)
  let compact = String.concat "" (String.split_on_char ' ' s) in
  let n = String.length compact in
  if n mod 4 <> 0 then err "base64Binary %S has length not divisible by 4" s
  else if n = 0 then Ok (Value.Base64_binary "")
  else begin
    let padding =
      if compact.[n - 2] = '=' && compact.[n - 1] = '=' then 2
      else if compact.[n - 1] = '=' then 1
      else 0
    in
    let buf = Buffer.create (n / 4 * 3) in
    let ok = ref true in
    let quantum = ref 0 and bits = ref 0 in
    String.iteri
      (fun i c ->
        if !ok then
          match c with
          | '=' -> if i < n - padding then ok := false
          | c -> (
            match base64_value c with
            | None -> ok := false
            | Some v ->
              quantum := (!quantum lsl 6) lor v;
              bits := !bits + 6;
              if !bits >= 8 then begin
                bits := !bits - 8;
                Buffer.add_char buf (Char.chr ((!quantum lsr !bits) land 0xFF))
              end))
      compact;
    if !ok then Ok (Value.Base64_binary (Buffer.contents buf))
    else err "invalid base64Binary %S" s
  end

let lift f inj s = match f s with Ok v -> Ok (inj v) | Error e -> Error e

let parse_primitive p s =
  match p with
  | P_string -> Ok (Value.String s)
  | P_boolean -> parse_boolean s
  | P_decimal -> lift Decimal.of_string (fun d -> Value.Decimal d) s
  | P_float -> parse_floating ~single:true s
  | P_double -> parse_floating ~single:false s
  | P_duration -> lift Calendar.parse_duration (fun d -> Value.Duration d) s
  | P_date_time -> lift Calendar.parse_date_time (fun d -> Value.Date_time d) s
  | P_time -> lift Calendar.parse_time (fun d -> Value.Time d) s
  | P_date -> lift Calendar.parse_date (fun d -> Value.Date d) s
  | P_g_year_month -> lift Calendar.parse_g_year_month (fun d -> Value.G_year_month d) s
  | P_g_year -> lift Calendar.parse_g_year (fun d -> Value.G_year d) s
  | P_g_month_day -> lift Calendar.parse_g_month_day (fun d -> Value.G_month_day d) s
  | P_g_day -> lift Calendar.parse_g_day (fun d -> Value.G_day d) s
  | P_g_month -> lift Calendar.parse_g_month (fun d -> Value.G_month d) s
  | P_hex_binary -> parse_hex_binary s
  | P_base64_binary -> parse_base64_binary s
  | P_any_uri ->
    (* XSD's anyURI lexical space is extremely loose; reject only
       characters that can never appear (space already collapsed away
       inside is allowed by RFC 2396 after escaping, so accept). *)
    Ok (Value.Any_uri s)
  | P_qname -> lift Xsm_xml.Name.of_string (fun n -> Value.Qname n) s
  | P_notation -> lift Xsm_xml.Name.of_string (fun n -> Value.Notation n) s

(* ------------------------------------------------------------------ *)
(* Derived-type checks                                                 *)

let is_nmtoken_char c =
  Xsm_xml.Name.is_ncname (String.make 1 c) || c = ':' || c = '-' || c = '.' || (c >= '0' && c <= '9')

let check_language s =
  (* [a-zA-Z]{1,8}(-[a-zA-Z0-9]{1,8})* *)
  let parts = String.split_on_char '-' s in
  let alpha c = (c >= 'a' && c <= 'z') || (c >= 'A' && c <= 'Z') in
  let alnum c = alpha c || (c >= '0' && c <= '9') in
  match parts with
  | [] -> false
  | first :: rest ->
    String.length first >= 1
    && String.length first <= 8
    && String.for_all alpha first
    && List.for_all
         (fun p -> String.length p >= 1 && String.length p <= 8 && String.for_all alnum p)
         rest

let check_name s =
  String.length s > 0
  &&
  let valid_start c =
    (c >= 'a' && c <= 'z') || (c >= 'A' && c <= 'Z') || c = '_' || c = ':' || Char.code c >= 0x80
  in
  valid_start s.[0] && String.for_all is_nmtoken_char s

let decimal_in_range d ~lo ~hi =
  (match lo with
  | Some l -> Decimal.compare d (Decimal.of_string_exn l) >= 0
  | None -> true)
  && match hi with
     | Some h -> Decimal.compare d (Decimal.of_string_exn h) <= 0
     | None -> true

let integer_range = function
  | Integer -> (None, None)
  | Non_positive_integer -> (None, Some "0")
  | Negative_integer -> (None, Some "-1")
  | Long -> (Some "-9223372036854775808", Some "9223372036854775807")
  | Int -> (Some "-2147483648", Some "2147483647")
  | Short -> (Some "-32768", Some "32767")
  | Byte -> (Some "-128", Some "127")
  | Non_negative_integer -> (Some "0", None)
  | Unsigned_long -> (Some "0", Some "18446744073709551615")
  | Unsigned_int -> (Some "0", Some "4294967295")
  | Unsigned_short -> (Some "0", Some "65535")
  | Unsigned_byte -> (Some "0", Some "255")
  | Positive_integer -> (Some "1", None)
  | _ -> invalid_arg "integer_range"

let validate_integer_family t s =
  (* integers do not allow a '.' in the lexical form *)
  if String.contains s '.' then err "%S is not a valid %s (decimal point)" s (name t)
  else
    match Decimal.of_string s with
    | Error e -> Error e
    | Ok d ->
      let lo, hi = integer_range t in
      if decimal_in_range d ~lo ~hi then Ok (Value.Decimal d)
      else err "%S out of range for %s" s (name t)

let validate_string_family t s =
  let ok_value () = Ok (Value.String s) in
  match t with
  | Normalized_string | Token -> ok_value ()
  | Language ->
    if check_language s then ok_value () else err "%S is not a language tag" s
  | Nmtoken ->
    if String.length s > 0 && String.for_all is_nmtoken_char s then ok_value ()
    else err "%S is not an NMTOKEN" s
  | Name -> if check_name s then ok_value () else err "%S is not a Name" s
  | Ncname | Id | Idref | Entity ->
    if Xsm_xml.Name.is_ncname s then ok_value () else err "%S is not an NCName" s
  | _ -> invalid_arg "validate_string_family"

let atomic_of_normalized t s =
  match t with
  | Any_type | Any_simple_type | Any_atomic_type | Untyped_atomic ->
    Ok (Value.Untyped_atomic s)
  | Primitive p -> parse_primitive p s
  | Normalized_string | Token | Language | Nmtoken | Name | Ncname | Id | Idref | Entity ->
    validate_string_family t s
  | Integer | Non_positive_integer | Negative_integer | Long | Int | Short | Byte
  | Non_negative_integer | Unsigned_long | Unsigned_int | Unsigned_short | Unsigned_byte
  | Positive_integer ->
    validate_integer_family t s
  | Nmtokens | Idrefs | Entities -> invalid_arg "atomic_of_normalized: list type"

let list_item_type = function
  | Nmtokens -> Nmtoken
  | Idrefs -> Idref
  | Entities -> Entity
  | _ -> invalid_arg "list_item_type"

let validate t s =
  let normalized = normalize_whitespace (whitespace t) s in
  if is_list t then begin
    let items =
      List.filter (fun x -> x <> "") (String.split_on_char ' ' normalized)
    in
    if items = [] then err "%s requires at least one item" (name t)
    else begin
      let item_t = list_item_type t in
      let rec go acc = function
        | [] -> Ok (List.rev acc)
        | x :: rest -> (
          match atomic_of_normalized item_t x with
          | Ok v -> go (v :: acc) rest
          | Error e -> Error e)
      in
      go [] items
    end
  end
  else
    match atomic_of_normalized t normalized with Ok v -> Ok [ v ] | Error e -> Error e

let validate_atomic t s =
  match validate t s with
  | Ok [ v ] -> Ok v
  | Ok _ -> err "expected a single atomic value for %s" (name t)
  | Error e -> Error e

let pp ppf t = Format.fprintf ppf "xs:%s" (name t)
