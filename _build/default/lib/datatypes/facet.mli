(** Constraining facets of XML Schema Part 2 (§4: "a type derived by
    restriction from another atomic type").

    Facets split into lexical-space facets (pattern), value-space
    facets (bounds, digits, enumeration) and length facets whose
    measure depends on the primitive (characters for strings, octets
    for the binary types, items for lists). *)

type t =
  | Length of int
  | Min_length of int
  | Max_length of int
  | Pattern of Regex.t
  | Enumeration of Value.t list  (** values, already in the base's value space *)
  | White_space of Builtin.whitespace
  | Max_inclusive of Value.t
  | Max_exclusive of Value.t
  | Min_inclusive of Value.t
  | Min_exclusive of Value.t
  | Total_digits of int
  | Fraction_digits of int

val facet_name : t -> string

val pattern : string -> (t, string) result
(** Compile a pattern facet. *)

val check :
  t ->
  lexical:string ->
  values:Value.t list ->
  (unit, string) result
(** [check f ~lexical ~values] applies one facet.  [lexical] is the
    whitespace-normalized lexical form (used by [Pattern]); [values]
    is the parsed value sequence (one element for atomic types, the
    item list for list types). *)

val pp : Format.formatter -> t -> unit
