lib/storage/block_storage.ml: Descriptive_schema Hashtbl List Option Printf String Xsm_numbering Xsm_xdm Xsm_xml
