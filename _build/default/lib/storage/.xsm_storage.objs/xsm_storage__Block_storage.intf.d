lib/storage/block_storage.mli: Descriptive_schema Xsm_numbering Xsm_xdm Xsm_xml
