lib/storage/buffer_pool.mli: Block_storage Descriptive_schema
