lib/storage/descriptive_schema.ml: Array Format Hashtbl List Option Xsm_xdm Xsm_xml
