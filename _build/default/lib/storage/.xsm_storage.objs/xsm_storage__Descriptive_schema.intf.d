lib/storage/descriptive_schema.mli: Format Xsm_xdm Xsm_xml
