lib/storage/buffer_pool.ml: Block_storage Hashtbl List
