type t = {
  capacity : int;
  (* LRU as a recency list: head = most recent; fine for the simulation
     sizes used in benches *)
  mutable resident : int list;
  mutable accesses : int;
  mutable hits : int;
  mutable misses : int;
  seen : (int, unit) Hashtbl.t;
}

let create ~capacity =
  if capacity < 1 then invalid_arg "Buffer_pool.create: capacity must be positive";
  {
    capacity;
    resident = [];
    accesses = 0;
    hits = 0;
    misses = 0;
    seen = Hashtbl.create 64;
  }

let touch pool block =
  pool.accesses <- pool.accesses + 1;
  if not (Hashtbl.mem pool.seen block) then Hashtbl.add pool.seen block ();
  if List.mem block pool.resident then begin
    pool.hits <- pool.hits + 1;
    pool.resident <- block :: List.filter (fun b -> b <> block) pool.resident;
    `Hit
  end
  else begin
    pool.misses <- pool.misses + 1;
    let kept =
      if List.length pool.resident >= pool.capacity then
        (* drop the least recently used (the tail) *)
        List.filteri (fun i _ -> i < pool.capacity - 1) pool.resident
      else pool.resident
    in
    pool.resident <- block :: kept;
    `Miss
  end

type stats = { accesses : int; hits : int; misses : int; distinct : int }

let stats (pool : t) =
  {
    accesses = pool.accesses;
    hits = pool.hits;
    misses = pool.misses;
    distinct = Hashtbl.length pool.seen;
  }

let hit_ratio s = if s.accesses = 0 then 1.0 else float_of_int s.hits /. float_of_int s.accesses

let run_trace ~capacity trace =
  let pool = create ~capacity in
  List.iter (fun b -> ignore (touch pool b)) trace;
  stats pool

let scan_trace bs snode =
  List.filter_map Block_storage.home_block_id (Block_storage.descendants_by_snode bs snode)

let navigation_trace bs d =
  let rec go acc d =
    let acc =
      match Block_storage.home_block_id d with Some b -> b :: acc | None -> acc
    in
    let acc = List.fold_left go acc (Block_storage.attributes bs d) in
    List.fold_left go acc (Block_storage.children bs d)
  in
  List.rev (go [] d)
