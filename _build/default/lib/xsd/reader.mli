(** Reader for the concrete XML Schema language: turns an
    [<xsd:schema>] document (the notation of the paper's Examples
    1–7) into the abstract syntax of [Xsm_schema.Ast].

    Supported vocabulary — the same representative subset the paper
    formalizes: [schema], [element] (with [name], [type], [minOccurs],
    [maxOccurs], [nillable], inline [complexType]/[simpleType]),
    [complexType] (with [name], [mixed]), [sequence], [choice] (with
    occurrence bounds, nestable), [attribute], [simpleContent] with
    [extension base] carrying attributes, and [simpleType] with
    [restriction] (all Part-2 facets this library implements), [list]
    and [union].

    Namespace prefixes are not resolved: any element whose local name
    matches the vocabulary is accepted (the paper's examples
    consistently use the [xsd:] prefix). *)

type error = { where : string; message : string }

val pp_error : Format.formatter -> error -> unit
val error_to_string : error -> string

val schema_of_document : Xsm_xml.Tree.t -> (Xsm_schema.Ast.schema, error) result
val schema_of_string : string -> (Xsm_schema.Ast.schema, error) result

val constraints_of_document :
  Xsm_xml.Tree.t -> (Xsm_identity.Constraint_def.def list, error) result
(** The [xsd:unique]/[xsd:key]/[xsd:keyref] definitions of the schema
    document ([xsd:selector]/[xsd:field] children), attached to the
    name of the element declaration they appear under. *)

val constraints_of_string :
  string -> (Xsm_identity.Constraint_def.def list, error) result
