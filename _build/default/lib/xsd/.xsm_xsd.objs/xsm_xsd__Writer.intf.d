lib/xsd/writer.mli: Xsm_schema Xsm_xml
