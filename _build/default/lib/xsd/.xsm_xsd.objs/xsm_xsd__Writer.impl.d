lib/xsd/writer.ml: Either List String Xsm_datatypes Xsm_schema Xsm_xml
