lib/xsd/reader.mli: Format Xsm_identity Xsm_schema Xsm_xml
