lib/xsd/reader.ml: Format List Option Printf String Xsm_datatypes Xsm_identity Xsm_schema Xsm_xml
