module Tree = Xsm_xml.Tree
module Name = Xsm_xml.Name
module Ast = Xsm_schema.Ast
module Simple_type = Xsm_datatypes.Simple_type
module Builtin = Xsm_datatypes.Builtin
module Facet = Xsm_datatypes.Facet

type error = { where : string; message : string }

let pp_error ppf e = Format.fprintf ppf "%s: %s" e.where e.message
let error_to_string e = Format.asprintf "%a" pp_error e

exception Fail of error

let fail where fmt = Printf.ksprintf (fun message -> raise (Fail { where; message })) fmt

(* vocabulary test on the local name *)
let is_xsd (e : Tree.element) local = String.equal e.name.Name.local local

let attr e name = Tree.attribute_value e (Name.local name)
let attr_default e name default = Option.value ~default (attr e name)

let required_attr where e name =
  match attr e name with
  | Some v -> v
  | None -> fail where "missing required attribute %S" name

let parse_name where s =
  match Name.of_string s with Ok n -> n | Error e -> fail where "%s" e

let parse_occurs where e =
  let min_occurs =
    match attr e "minOccurs" with
    | None -> 1
    | Some s -> (
      match int_of_string_opt s with
      | Some n when n >= 0 -> n
      | _ -> fail where "bad minOccurs %S" s)
  in
  let max_occurs =
    match attr e "maxOccurs" with
    | None -> Some 1
    | Some "unbounded" -> None
    | Some s -> (
      match int_of_string_opt s with
      | Some n when n >= 0 -> Some n
      | _ -> fail where "bad maxOccurs %S" s)
  in
  { Ast.min_occurs; max_occurs }

(* named simple types of the schema being read, for facet-value parsing *)
type env = { mutable simple_types : (Name.t * Simple_type.t) list }

let lookup_simple env name =
  match List.find_opt (fun (n, _) -> Name.equal n name) env.simple_types with
  | Some (_, st) -> Some st
  | None -> (
    match Builtin.of_name (Name.to_string name) with
    | Some b when Builtin.is_simple b -> Some (Simple_type.builtin b)
    | Some _ | None -> None)

(* ------------------------------------------------------------------ *)
(* simpleType                                                          *)

let facet_of_element _env where ~base (e : Tree.element) =
  let value () = required_attr where e "value" in
  let int_value () =
    match int_of_string_opt (value ()) with
    | Some n -> n
    | None -> fail where "facet %s needs an integer value" e.name.Name.local
  in
  let typed_value () =
    match Simple_type.validate_atomic base (value ()) with
    | Ok v -> v
    | Error msg -> fail where "facet %s: %s" e.name.Name.local msg
  in
  match e.name.Name.local with
  | "length" -> Some (Facet.Length (int_value ()))
  | "minLength" -> Some (Facet.Min_length (int_value ()))
  | "maxLength" -> Some (Facet.Max_length (int_value ()))
  | "pattern" -> (
    match Facet.pattern (value ()) with
    | Ok f -> Some f
    | Error msg -> fail where "pattern: %s" msg)
  | "enumeration" -> Some (Facet.Enumeration [ typed_value () ])
  | "whiteSpace" -> (
    match value () with
    | "preserve" -> Some (Facet.White_space Builtin.Preserve)
    | "replace" -> Some (Facet.White_space Builtin.Replace)
    | "collapse" -> Some (Facet.White_space Builtin.Collapse)
    | other -> fail where "bad whiteSpace value %S" other)
  | "maxInclusive" -> Some (Facet.Max_inclusive (typed_value ()))
  | "maxExclusive" -> Some (Facet.Max_exclusive (typed_value ()))
  | "minInclusive" -> Some (Facet.Min_inclusive (typed_value ()))
  | "minExclusive" -> Some (Facet.Min_exclusive (typed_value ()))
  | "totalDigits" -> Some (Facet.Total_digits (int_value ()))
  | "fractionDigits" -> Some (Facet.Fraction_digits (int_value ()))
  | "annotation" -> None
  | other -> fail where "unknown facet element %s" other

(* merge consecutive enumeration facets into one *)
let merge_enumerations facets =
  let enums, rest =
    List.partition (function Facet.Enumeration _ -> true | _ -> false) facets
  in
  let values =
    List.concat_map (function Facet.Enumeration vs -> vs | _ -> []) enums
  in
  if values = [] then rest else Facet.Enumeration values :: rest

let rec simple_type_of_element env where ?name (e : Tree.element) =
  let body = Tree.child_elements e in
  match
    List.find_opt (fun c -> is_xsd c "restriction" || is_xsd c "list" || is_xsd c "union") body
  with
  | None -> fail where "simpleType needs restriction, list or union"
  | Some child when is_xsd child "restriction" ->
    let base_name = parse_name where (required_attr where child "base") in
    let base =
      match lookup_simple env base_name with
      | Some st -> st
      | None -> (
        (* allow inline simpleType as the base? the spec uses a child
           simpleType element when base is absent *)
        fail where "unknown restriction base %s" (Name.to_string base_name))
    in
    let facets =
      List.filter_map (facet_of_element env where ~base) (Tree.child_elements child)
    in
    (match Simple_type.restrict ?name base (merge_enumerations facets) with
    | Ok st -> st
    | Error msg -> fail where "%s" msg)
  | Some child when is_xsd child "list" -> (
    let item =
      match attr child "itemType" with
      | Some s -> (
        let n = parse_name where s in
        match lookup_simple env n with
        | Some st -> st
        | None -> fail where "unknown list item type %s" s)
      | None -> (
        match List.find_opt (fun c -> is_xsd c "simpleType") (Tree.child_elements child) with
        | Some inline -> simple_type_of_element env where inline
        | None -> fail where "list needs itemType or an inline simpleType")
    in
    match Simple_type.list_of ?name item with
    | Ok st -> st
    | Error msg -> fail where "%s" msg)
  | Some child -> (
    (* union *)
    let named_members =
      match attr child "memberTypes" with
      | None -> []
      | Some s ->
        List.filter_map
          (fun tok ->
            if tok = "" then None
            else
              let n = parse_name where tok in
              match lookup_simple env n with
              | Some st -> Some st
              | None -> fail where "unknown union member type %s" tok)
          (String.split_on_char ' ' s)
    in
    let inline_members =
      List.filter_map
        (fun c -> if is_xsd c "simpleType" then Some (simple_type_of_element env where c) else None)
        (Tree.child_elements child)
    in
    match Simple_type.union_of ?name (named_members @ inline_members) with
    | Ok st -> st
    | Error msg -> fail where "%s" msg)

(* ------------------------------------------------------------------ *)
(* complexType / groups / elements                                     *)

let rec complex_type_of_element env where (e : Tree.element) =
  let mixed = attr_default e "mixed" "false" = "true" in
  let body = Tree.child_elements e in
  match List.find_opt (fun c -> is_xsd c "simpleContent") body with
  | Some sc -> (
    match List.find_opt (fun c -> is_xsd c "extension") (Tree.child_elements sc) with
    | None -> fail where "simpleContent needs an extension child"
    | Some ext ->
      let base = parse_name where (required_attr where ext "base") in
      let attributes = attributes_of env where (Tree.child_elements ext) in
      Ast.Simple_content { base; attributes })
  | None ->
    let content =
      List.find_map
        (fun c ->
          if is_xsd c "sequence" || is_xsd c "choice" || is_xsd c "all" then
            Some (group_of_element env where c)
          else None)
        body
    in
    let attributes = attributes_of env where body in
    Ast.Complex_content { mixed; content; attributes }

and attributes_of env where body =
  ignore env;
  List.filter_map
    (fun c ->
      if is_xsd c "attribute" then begin
        let name = parse_name where (required_attr where c "name") in
        let ty = parse_name where (required_attr where c "type") in
        let use =
          match attr_default c "use" "optional" with
          | "optional" -> Ast.Optional
          | "required" -> Ast.Required
          | "prohibited" -> Ast.Prohibited
          | other -> fail where "bad use value %S" other
        in
        let default = attr c "default" in
        if default <> None && use = Ast.Required then
          fail where "attribute %s: default requires use=optional" (Name.to_string name);
        Some { Ast.attr_name = name; attr_type = ty; attr_use = use; attr_default = default }
      end
      else None)
    body

and group_of_element env where (e : Tree.element) =
  let combination =
    if is_xsd e "sequence" then Ast.Sequence
    else if is_xsd e "choice" then Ast.Choice
    else if is_xsd e "all" then Ast.All
    else fail where "expected sequence, choice or all, found %s" e.name.Name.local
  in
  let group_repetition = parse_occurs where e in
  let particles =
    List.filter_map
      (fun c ->
        if is_xsd c "element" then Some (Ast.Element_particle (element_of env where c))
        else if is_xsd c "sequence" || is_xsd c "choice" then
          Some (Ast.Group_particle (group_of_element env where c))
        else if is_xsd c "annotation" then None
        else fail where "unexpected %s inside a group" c.name.Name.local)
      (Tree.child_elements e)
  in
  { Ast.particles; combination; group_repetition }

and element_of env where (e : Tree.element) =
  let name = parse_name where (required_attr where e "name") in
  let where = where ^ "/" ^ Name.to_string name in
  let repetition = parse_occurs where e in
  let nillable = attr_default e "nillable" "false" = "true" in
  let inline_complex =
    List.find_opt (fun c -> is_xsd c "complexType") (Tree.child_elements e)
  in
  let inline_simple =
    List.find_opt (fun c -> is_xsd c "simpleType") (Tree.child_elements e)
  in
  let elem_type =
    match attr e "type", inline_complex, inline_simple with
    | Some t, None, None -> Ast.Type_name (parse_name where t)
    | None, Some ct, None -> Ast.Anonymous (complex_type_of_element env where ct)
    | None, None, Some st -> Ast.Anonymous_simple (simple_type_of_element env where st)
    | None, None, None ->
      (* no type at all: xs:anyType per the spec; model as anyType name *)
      Ast.Type_name (Name.make ~prefix:"xs" "anyType")
    | _ -> fail where "element has both a type attribute and an inline type"
  in
  { Ast.elem_name = name; elem_type; repetition; nillable }

(* ------------------------------------------------------------------ *)

let schema_of_document (doc : Tree.t) =
  match
    let root = doc.Tree.root in
    if not (is_xsd root "schema") then fail "/" "root element is not xsd:schema";
    let env = { simple_types = [] } in
    let body = Tree.child_elements root in
    (* two passes over named simpleTypes: definitions may reference each
       other; iterate until no progress *)
    let named_simple =
      List.filter (fun c -> is_xsd c "simpleType" && attr c "name" <> None) body
    in
    let pending = ref named_simple in
    let progress = ref true in
    while !pending <> [] && !progress do
      progress := false;
      pending :=
        List.filter
          (fun c ->
            let n = parse_name "/simpleType" (required_attr "/simpleType" c "name") in
            match simple_type_of_element env "/simpleType" ~name:(Name.to_string n) c with
            | st ->
              env.simple_types <- (n, st) :: env.simple_types;
              progress := true;
              false
            | exception Fail _ -> true)
          !pending
    done;
    (match !pending with
    | [] -> ()
    | c :: _ ->
      (* re-raise the real error for the first unresolvable type *)
      let n = required_attr "/simpleType" c "name" in
      ignore (simple_type_of_element env ("/simpleType " ^ n) ~name:n c));
    let complex_types =
      List.filter_map
        (fun c ->
          if is_xsd c "complexType" then
            match attr c "name" with
            | Some n ->
              let name = parse_name "/complexType" n in
              Some (name, complex_type_of_element env ("/complexType " ^ n) c)
            | None -> fail "/complexType" "top-level complexType needs a name"
          else None)
        body
    in
    let root_decl =
      match List.find_opt (fun c -> is_xsd c "element") body with
      | Some e -> element_of env "/element" e
      | None -> fail "/" "schema has no global element declaration"
    in
    {
      Ast.root = root_decl;
      complex_types;
      simple_types = List.rev env.simple_types;
    }
  with
  | s -> Ok s
  | exception Fail e -> Error e

(* ------------------------------------------------------------------ *)
(* Identity constraints                                                *)

let constraint_of_element where ~context (e : Tree.element) =
  let name = required_attr where e "name" in
  let selector =
    match List.find_opt (fun c -> is_xsd c "selector") (Tree.child_elements e) with
    | Some s -> required_attr where s "xpath"
    | None -> fail where "%s %s has no selector" e.name.Name.local name
  in
  let fields =
    List.filter_map
      (fun c -> if is_xsd c "field" then Some (required_attr where c "xpath") else None)
      (Tree.child_elements e)
  in
  if fields = [] then fail where "%s %s has no fields" e.name.Name.local name;
  let module C = Xsm_identity.Constraint_def in
  match e.name.Name.local with
  | "unique" -> C.unique ~name ~context:(Name.to_string context) ~selector fields
  | "key" -> C.key ~name ~context:(Name.to_string context) ~selector fields
  | "keyref" ->
    let refer = required_attr where e "refer" in
    (* strip an optional prefix on the referred name *)
    let refer =
      match String.index_opt refer ':' with
      | Some i -> String.sub refer (i + 1) (String.length refer - i - 1)
      | None -> refer
    in
    C.keyref ~name ~context:(Name.to_string context) ~refer ~selector fields
  | other -> fail where "not an identity constraint: %s" other

let constraints_of_document (doc : Tree.t) =
  match
    let acc = ref [] in
    let rec walk (e : Tree.element) =
      if is_xsd e "element" then begin
        match attr e "name" with
        | Some n ->
          let context = parse_name "/element" n in
          List.iter
            (fun c ->
              if is_xsd c "unique" || is_xsd c "key" || is_xsd c "keyref" then
                acc :=
                  constraint_of_element
                    ("/element " ^ n)
                    ~context c
                  :: !acc)
            (Tree.child_elements e)
        | None -> ()
      end;
      List.iter walk (Tree.child_elements e)
    in
    walk doc.Tree.root;
    List.rev !acc
  with
  | cs -> Ok cs
  | exception Fail e -> Error e

let constraints_of_string text =
  match Xsm_xml.Parser.parse_document text with
  | Error e -> Error { where = "/"; message = Xsm_xml.Parser.error_to_string e }
  | Ok doc -> constraints_of_document doc

let schema_of_string text =
  match Xsm_xml.Parser.parse_document text with
  | Error e -> Error { where = "/"; message = Xsm_xml.Parser.error_to_string e }
  | Ok doc -> schema_of_document doc
