(** Writer: abstract syntax back to the concrete [<xsd:schema>]
    notation.  [Reader.schema_of_document (document_of_schema s)]
    reproduces [s] up to representation of simple types (a tested
    invariant for the subset both directions support). *)

val document_of_schema : Xsm_schema.Ast.schema -> Xsm_xml.Tree.t
val to_string : Xsm_schema.Ast.schema -> string
(** Pretty-printed XSD text. *)
