module Tree = Xsm_xml.Tree
module Name = Xsm_xml.Name
module Ast = Xsm_schema.Ast
module Simple_type = Xsm_datatypes.Simple_type
module Builtin = Xsm_datatypes.Builtin
module Facet = Xsm_datatypes.Facet
module Value = Xsm_datatypes.Value

let xsd local = Name.make ~prefix:"xsd" local

let xe ?(attrs = []) ?(children = []) local =
  Tree.elem_n ~attrs ~children (xsd local)

let name_attr n v = { Tree.name = Name.local n; value = v }

let occurs_attrs (r : Ast.repetition) =
  let min_a =
    if r.min_occurs = 1 then [] else [ name_attr "minOccurs" (string_of_int r.min_occurs) ]
  in
  let max_a =
    match r.max_occurs with
    | Some 1 -> []
    | Some m -> [ name_attr "maxOccurs" (string_of_int m) ]
    | None -> [ name_attr "maxOccurs" "unbounded" ]
  in
  min_a @ max_a

(* a printable type name: keep prefixes as written *)
let type_name_string n = Name.to_string n

let rec simple_type_element ?name (st : Simple_type.t) =
  let name_attrs = match name with Some n -> [ name_attr "name" n ] | None -> [] in
  match st with
  | Simple_type.Builtin b ->
    (* reference types don't need a definition element; wrap in a
       trivial restriction so the writer can still emit one if asked *)
    xe "simpleType" ~attrs:name_attrs
      ~children:
        [ Tree.element (xe "restriction" ~attrs:[ name_attr "base" ("xsd:" ^ Builtin.name b) ]) ]
  | Simple_type.Restriction { base; facets; _ } ->
    let base_ref =
      match Simple_type.type_name base with
      | Some n -> n
      | None -> "xsd:anySimpleType"
    in
    let facet_children = List.concat_map facet_elements facets in
    xe "simpleType" ~attrs:name_attrs
      ~children:
        [
          Tree.element
            (xe "restriction"
               ~attrs:[ name_attr "base" (builtin_prefixed base_ref) ]
               ~children:facet_children);
        ]
  | Simple_type.List { item; _ } -> (
    match Simple_type.type_name item with
    | Some n ->
      xe "simpleType" ~attrs:name_attrs
        ~children:[ Tree.element (xe "list" ~attrs:[ name_attr "itemType" (builtin_prefixed n) ]) ]
    | None ->
      xe "simpleType" ~attrs:name_attrs
        ~children:
          [ Tree.element (xe "list" ~children:[ Tree.element (simple_type_element item) ]) ])
  | Simple_type.Union { members; _ } ->
    let named, anonymous =
      List.partition_map
        (fun m ->
          match Simple_type.type_name m with
          | Some n -> Either.Left (builtin_prefixed n)
          | None -> Either.Right m)
        members
    in
    let attrs =
      if named = [] then [] else [ name_attr "memberTypes" (String.concat " " named) ]
    in
    xe "simpleType" ~attrs:name_attrs
      ~children:
        [
          Tree.element
            (xe "union" ~attrs
               ~children:(List.map (fun m -> Tree.element (simple_type_element m)) anonymous));
        ]

and builtin_prefixed n =
  (* built-in names get the xsd: prefix when they arrive unprefixed *)
  if String.contains n ':' then n
  else
    match Builtin.of_name n with Some _ -> "xsd:" ^ n | None -> n

and facet_elements f =
  let v name value = [ Tree.element (xe name ~attrs:[ name_attr "value" value ]) ] in
  match f with
  | Facet.Length n -> v "length" (string_of_int n)
  | Facet.Min_length n -> v "minLength" (string_of_int n)
  | Facet.Max_length n -> v "maxLength" (string_of_int n)
  | Facet.Pattern r -> v "pattern" (Xsm_datatypes.Regex.source r)
  | Facet.Enumeration values ->
    List.concat_map (fun value -> v "enumeration" (Value.canonical_string value)) values
  | Facet.White_space Builtin.Preserve -> v "whiteSpace" "preserve"
  | Facet.White_space Builtin.Replace -> v "whiteSpace" "replace"
  | Facet.White_space Builtin.Collapse -> v "whiteSpace" "collapse"
  | Facet.Max_inclusive b -> v "maxInclusive" (Value.canonical_string b)
  | Facet.Max_exclusive b -> v "maxExclusive" (Value.canonical_string b)
  | Facet.Min_inclusive b -> v "minInclusive" (Value.canonical_string b)
  | Facet.Min_exclusive b -> v "minExclusive" (Value.canonical_string b)
  | Facet.Total_digits n -> v "totalDigits" (string_of_int n)
  | Facet.Fraction_digits n -> v "fractionDigits" (string_of_int n)

let rec element_decl_element (e : Ast.element_decl) =
  let base_attrs = [ name_attr "name" (Name.to_string e.elem_name) ] in
  let nil_attrs = if e.nillable then [ name_attr "nillable" "true" ] else [] in
  match e.elem_type with
  | Ast.Type_name n ->
    xe "element"
      ~attrs:(base_attrs @ [ name_attr "type" (type_name_string n) ] @ occurs_attrs e.repetition @ nil_attrs)
  | Ast.Anonymous ct ->
    xe "element"
      ~attrs:(base_attrs @ occurs_attrs e.repetition @ nil_attrs)
      ~children:[ Tree.element (complex_type_element ct) ]
  | Ast.Anonymous_simple st ->
    xe "element"
      ~attrs:(base_attrs @ occurs_attrs e.repetition @ nil_attrs)
      ~children:[ Tree.element (simple_type_element st) ]

and group_element (g : Ast.group_def) =
  let tag =
    match g.combination with
    | Ast.Sequence -> "sequence"
    | Ast.Choice -> "choice"
    | Ast.All -> "all"
  in
  xe tag
    ~attrs:(occurs_attrs g.group_repetition)
    ~children:
      (List.map
         (function
           | Ast.Element_particle e -> Tree.element (element_decl_element e)
           | Ast.Group_particle inner -> Tree.element (group_element inner))
         g.particles)

and attribute_element (a : Ast.attribute_decl) =
  let use_attrs =
    match a.attr_use with
    | Ast.Required -> [ name_attr "use" "required" ]
    | Ast.Optional -> []
    | Ast.Prohibited -> [ name_attr "use" "prohibited" ]
  in
  let default_attrs =
    match a.attr_default with Some d -> [ name_attr "default" d ] | None -> []
  in
  xe "attribute"
    ~attrs:
      ([
         name_attr "name" (Name.to_string a.attr_name);
         name_attr "type" (type_name_string a.attr_type);
       ]
      @ use_attrs @ default_attrs)

and complex_type_element ?name (ct : Ast.complex_type) =
  let name_attrs = match name with Some n -> [ name_attr "name" n ] | None -> [] in
  match ct with
  | Ast.Simple_content { base; attributes } ->
    xe "complexType" ~attrs:name_attrs
      ~children:
        [
          Tree.element
            (xe "simpleContent"
               ~children:
                 [
                   Tree.element
                     (xe "extension"
                        ~attrs:[ name_attr "base" (type_name_string base) ]
                        ~children:(List.map (fun a -> Tree.element (attribute_element a)) attributes));
                 ]);
        ]
  | Ast.Complex_content { mixed; content; attributes } ->
    let mixed_attrs = if mixed then [ name_attr "mixed" "true" ] else [] in
    let group_children =
      match content with
      | None -> []
      | Some g when Ast.group_is_empty g -> []
      | Some g -> [ Tree.element (group_element g) ]
    in
    xe "complexType"
      ~attrs:(name_attrs @ mixed_attrs)
      ~children:(group_children @ List.map (fun a -> Tree.element (attribute_element a)) attributes)

let document_of_schema (s : Ast.schema) =
  let simple_defs =
    List.map
      (fun (n, st) -> Tree.element (simple_type_element ~name:(Name.to_string n) st))
      s.simple_types
  in
  let complex_defs =
    List.map
      (fun (n, ct) -> Tree.element (complex_type_element ~name:(Name.to_string n) ct))
      s.complex_types
  in
  let root =
    Tree.elem_n (xsd "schema")
      ~attrs:[ { Tree.name = Name.make ~prefix:"xmlns" "xsd"; value = "http://www.w3.org/2001/XMLSchema" } ]
      ~children:(simple_defs @ complex_defs @ [ Tree.element (element_decl_element s.root) ])
  in
  Tree.document root

let to_string s = Xsm_xml.Printer.to_pretty_string (document_of_schema s)
