module Store = Xsm_xdm.Store

type t = { start : int; stop : int; level : int }

let compare a b = Stdlib.compare (a.start, a.stop) (b.start, b.stop)
let is_ancestor a b = a.start < b.start && b.stop < a.stop
let is_parent a b = is_ancestor a b && b.level = a.level + 1
let byte_size _ = 20

type forest = {
  labels : (int, t) Hashtbl.t;
  kids : (int, Store.node list) Hashtbl.t;
  root : Store.node;
  gap : int;
  mutable relabels : int;
}

let label f node = Hashtbl.find f.labels (Store.node_id node)

(* Assign intervals: pre-order, each node reserves a start, children
   inside, then a stop; [gap] free integers are left around every
   endpoint. *)
let assign f =
  let counter = ref 0 in
  let tick () =
    counter := !counter + f.gap;
    !counter
  in
  let rec go node level =
    let start = tick () in
    let kids = Option.value ~default:[] (Hashtbl.find_opt f.kids (Store.node_id node)) in
    List.iter (fun c -> go c (level + 1)) kids;
    let stop = tick () in
    Hashtbl.replace f.labels (Store.node_id node) { start; stop; level }
  in
  go f.root 0

let forest_of_tree ?(gap = 16) store rootn =
  let f =
    {
      labels = Hashtbl.create 256;
      kids = Hashtbl.create 256;
      root = rootn;
      gap;
      relabels = 0;
    }
  in
  let rec collect node =
    let ordered = Store.attributes store node @ Store.children store node in
    Hashtbl.replace f.kids (Store.node_id node) ordered;
    List.iter collect ordered
  in
  collect rootn;
  assign f;
  f

let insert_after f ~parent ~after node =
  let kids = Option.value ~default:[] (Hashtbl.find_opt f.kids (Store.node_id parent)) in
  let before, following =
    match after with
    | None -> ([], kids)
    | Some a ->
      let rec split acc = function
        | [] -> (List.rev acc, [])
        | k :: rest ->
          if Store.equal_node k a then (List.rev (k :: acc), rest) else split (k :: acc) rest
      in
      split [] kids
  in
  Hashtbl.replace f.kids (Store.node_id parent) (before @ [ node ] @ following);
  Hashtbl.replace f.kids (Store.node_id node) [];
  let pl = label f parent in
  (* free space between the previous element's end and the next start *)
  let lo =
    match after with None -> pl.start | Some a -> (label f a).stop
  in
  let hi =
    match following with [] -> pl.stop | next :: _ -> (label f next).start
  in
  if hi - lo >= 3 then begin
    (* room for start < stop strictly inside (lo, hi) *)
    let start = lo + ((hi - lo) / 3) in
    let stop = lo + (2 * (hi - lo) / 3) in
    let l = { start; stop = max stop (start + 1); level = pl.level + 1 } in
    if l.stop < hi then begin
      Hashtbl.replace f.labels (Store.node_id node) l;
      (l, 0)
    end
    else begin
      f.relabels <- f.relabels + 1;
      assign f;
      (label f node, Hashtbl.length f.labels - 1)
    end
  end
  else begin
    f.relabels <- f.relabels + 1;
    assign f;
    (label f node, Hashtbl.length f.labels - 1)
  end

let relabel_count f = f.relabels
