module Store = Xsm_xdm.Store

type t = int list

let root = []

let rec compare a b =
  match a, b with
  | [], [] -> 0
  | [], _ :: _ -> -1 (* ancestor first *)
  | _ :: _, [] -> 1
  | x :: a', y :: b' -> if x <> y then Stdlib.compare x y else compare a' b'

let equal a b = compare a b = 0

let rec is_ancestor a b =
  match a, b with
  | [], _ :: _ -> true
  | x :: a', y :: b' -> x = y && is_ancestor a' b'
  | _, [] -> false

let is_parent a b = List.length b = List.length a + 1 && is_ancestor a b
let depth = List.length
let byte_size l = 4 * List.length l
let child parent i = parent @ [ i + 1 ]

let pp ppf l =
  Format.fprintf ppf "%s" (String.concat "." (List.map string_of_int l))

(* ------------------------------------------------------------------ *)

type forest = {
  labels : (int, t) Hashtbl.t;
  (* children of each node in current sibling order, for renumbering *)
  kids : (int, Store.node list) Hashtbl.t;
}

let label f node = Hashtbl.find f.labels (Store.node_id node)

let forest_of_tree store rootn =
  let f = { labels = Hashtbl.create 256; kids = Hashtbl.create 256 } in
  let rec go node l =
    Hashtbl.replace f.labels (Store.node_id node) l;
    let ordered = Store.attributes store node @ Store.children store node in
    Hashtbl.replace f.kids (Store.node_id node) ordered;
    List.iteri (fun i c -> go c (child l i)) ordered
  in
  go rootn root;
  f

(* relabel the subtree under [node]; returns how many labels were set *)
let rec relabel f node l =
  Hashtbl.replace f.labels (Store.node_id node) l;
  let kids = Option.value ~default:[] (Hashtbl.find_opt f.kids (Store.node_id node)) in
  List.fold_left (fun (i, count) c -> (i + 1, count + relabel f c (child l i))) (0, 1) kids
  |> snd

let insert_after f ~parent ~after node =
  let kids = Option.value ~default:[] (Hashtbl.find_opt f.kids (Store.node_id parent)) in
  let before, following =
    match after with
    | None -> ([], kids)
    | Some a ->
      let rec split acc = function
        | [] -> (List.rev acc, [])
        | k :: rest ->
          if Store.equal_node k a then (List.rev (k :: acc), rest) else split (k :: acc) rest
      in
      split [] kids
  in
  let new_kids = before @ [ node ] @ following in
  Hashtbl.replace f.kids (Store.node_id parent) new_kids;
  let parent_label = label f parent in
  let position = List.length before in
  let new_label = child parent_label position in
  Hashtbl.replace f.labels (Store.node_id node) new_label;
  Hashtbl.replace f.kids (Store.node_id node) [];
  (* renumber every following sibling subtree *)
  let changed =
    List.fold_left
      (fun (i, count) sib -> (i + 1, count + relabel f sib (child parent_label i)))
      (position + 1, 0) following
    |> snd
  in
  (new_label, changed)

let total_bytes f = Hashtbl.fold (fun _ l acc -> acc + byte_size l) f.labels 0
let max_bytes f = Hashtbl.fold (fun _ l acc -> max acc (byte_size l)) f.labels 0
