module Store = Xsm_xdm.Store

(* sorted list of the primes on the root path; the root owns the first
   prime *)
type t = int list

let byte_size l = 8 * List.length l
let equal a b = a = b

(* divisibility of products = multiset inclusion *)
let rec subset a b =
  match a, b with
  | [], _ -> true
  | _, [] -> false
  | x :: a', y :: b' ->
    if x = y then subset a' b' else if x > y then subset a b' else false

let is_ancestor a b = List.length a < List.length b && subset a b
let is_parent a b = List.length b = List.length a + 1 && subset a b

type forest = {
  labels : (int, t) Hashtbl.t;
  (* simultaneous-congruence surrogate: node's own prime -> global
     document-order index *)
  order : (int, int) Hashtbl.t;  (* own prime -> order rank *)
  own : (int, int) Hashtbl.t;  (* node id -> own prime *)
  mutable next_prime : int;
  mutable next_rank : int;
}

let is_prime n =
  let rec go d = d * d > n || (n mod d <> 0 && go (d + 1)) in
  n >= 2 && go 2

let rec next_prime_from n = if is_prime n then n else next_prime_from (n + 1)

let fresh_prime f =
  let p = next_prime_from f.next_prime in
  f.next_prime <- p + 1;
  p

let label f node = Hashtbl.find f.labels (Store.node_id node)

let forest_of_tree store rootn =
  let f =
    {
      labels = Hashtbl.create 256;
      order = Hashtbl.create 256;
      own = Hashtbl.create 256;
      next_prime = 2;
      next_rank = 0;
    }
  in
  let rec go node path =
    let p = fresh_prime f in
    let lbl = List.sort Stdlib.compare (p :: path) in
    Hashtbl.replace f.labels (Store.node_id node) lbl;
    Hashtbl.replace f.own (Store.node_id node) p;
    Hashtbl.replace f.order p f.next_rank;
    f.next_rank <- f.next_rank + 1;
    List.iter (fun c -> go c lbl) (Store.attributes store node @ Store.children store node)
  in
  go rootn [];
  f

(* own prime of a label = the factor not shared with the parent; we
   recover it as the factor with the highest order rank *)
let own_prime f lbl =
  List.fold_left
    (fun best p ->
      match Hashtbl.find_opt f.order p, best with
      | Some r, Some (_, br) when r <= br -> best
      | Some r, _ -> Some (p, r)
      | None, _ -> best)
    None lbl

let compare_order f a b =
  match own_prime f a, own_prime f b with
  | Some (_, ra), Some (_, rb) -> Stdlib.compare ra rb
  | _ -> invalid_arg "Prime_label.compare_order: unknown label"

let insert_after f ~parent ~after node =
  let parent_label = label f parent in
  let p = fresh_prime f in
  let lbl = List.sort Stdlib.compare (p :: parent_label) in
  Hashtbl.replace f.labels (Store.node_id node) lbl;
  Hashtbl.replace f.own (Store.node_id node) p;
  (* shift every rank after the insertion point: the SC table is dense *)
  let anchor_rank =
    match after with
    | Some a -> (
      match own_prime f (label f a) with Some (_, r) -> r | None -> f.next_rank - 1)
    | None -> (
      match own_prime f parent_label with Some (_, r) -> r | None -> -1)
  in
  let to_shift =
    Hashtbl.fold
      (fun prime rank acc -> if rank > anchor_rank then (prime, rank) :: acc else acc)
      f.order []
  in
  List.iter (fun (prime, rank) -> Hashtbl.replace f.order prime (rank + 1)) to_shift;
  Hashtbl.replace f.order p (anchor_rank + 1);
  f.next_rank <- f.next_rank + 1;
  (lbl, List.length to_shift)
