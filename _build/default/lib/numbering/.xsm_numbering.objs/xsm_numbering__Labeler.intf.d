lib/numbering/labeler.mli: Sedna_label Xsm_xdm
