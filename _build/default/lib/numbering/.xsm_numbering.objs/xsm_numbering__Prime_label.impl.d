lib/numbering/prime_label.ml: Hashtbl List Stdlib Xsm_xdm
