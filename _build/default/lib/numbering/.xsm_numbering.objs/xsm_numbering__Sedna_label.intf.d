lib/numbering/sedna_label.mli: Format
