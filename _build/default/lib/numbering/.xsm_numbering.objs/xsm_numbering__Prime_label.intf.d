lib/numbering/prime_label.mli: Xsm_xdm
