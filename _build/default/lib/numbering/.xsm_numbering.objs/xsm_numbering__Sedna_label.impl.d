lib/numbering/sedna_label.ml: Buffer Bytes Char Format List String
