lib/numbering/range_label.ml: Hashtbl List Option Stdlib Xsm_xdm
