lib/numbering/range_label.mli: Xsm_xdm
