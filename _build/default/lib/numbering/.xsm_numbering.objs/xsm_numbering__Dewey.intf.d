lib/numbering/dewey.mli: Format Xsm_xdm
