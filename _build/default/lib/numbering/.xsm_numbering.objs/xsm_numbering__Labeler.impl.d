lib/numbering/labeler.ml: Hashtbl List Sedna_label Xsm_xdm
