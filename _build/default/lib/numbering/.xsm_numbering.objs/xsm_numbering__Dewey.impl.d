lib/numbering/dewey.ml: Format Hashtbl List Option Stdlib String Xsm_xdm
