(** Range (interval) labeling (Li & Moon, VLDB 2001) — reference [12]
    of the paper.

    Each node carries [(start, end, level)] with the containment
    invariant: a node's interval strictly contains its descendants'
    intervals.  Document order compares [start]; ancestorship is
    interval containment; parenthood adds a level check.  Gaps are
    pre-allocated between labels so some insertions are free, but a
    full gap forces a global relabel of the tree — the failure mode
    bench E6 contrasts with Sedna labels. *)

type t = { start : int; stop : int; level : int }

val compare : t -> t -> int
val is_ancestor : t -> t -> bool
val is_parent : t -> t -> bool
val byte_size : t -> int
(** Storage cost model: two 8-byte endpoints plus 4-byte level. *)

type forest

val forest_of_tree : ?gap:int -> Xsm_xdm.Store.t -> Xsm_xdm.Store.node -> forest
(** Label the tree with the given inter-label gap (default 16). *)

val label : forest -> Xsm_xdm.Store.node -> t

val insert_after :
  forest -> parent:Xsm_xdm.Store.node -> after:Xsm_xdm.Store.node option ->
  Xsm_xdm.Store.node -> t * int
(** Insert a new leaf.  Returns its label and the number of existing
    labels changed: 0 when the gap accommodated it, the whole tree
    after a global relabel. *)

val relabel_count : forest -> int
(** How many global relabels have occurred so far. *)
