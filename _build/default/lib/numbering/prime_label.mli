(** Prime-number labeling (Wu, Lee & Hsu, ICDE 2004) — reference [22]
    of the paper.

    Every node owns a distinct prime; a node's label is the product of
    the primes on its root path, so [x] is an ancestor of [y] iff
    [label x] divides [label y].  We represent the product as the
    multiset of primes (exact, no overflow).  Document order is not
    decidable from the product alone — the original paper keeps an
    auxiliary simultaneous-congruence table, which we model as an
    explicit sibling-order map; its maintenance cost on updates is what
    bench E6 reports. *)

type t

val byte_size : t -> int
(** 8 bytes per prime factor. *)

val is_ancestor : t -> t -> bool
val is_parent : t -> t -> bool
val equal : t -> t -> bool

type forest

val forest_of_tree : Xsm_xdm.Store.t -> Xsm_xdm.Store.node -> forest
val label : forest -> Xsm_xdm.Store.node -> t

val compare_order : forest -> t -> t -> int
(** Document order via the auxiliary order table. *)

val insert_after :
  forest -> parent:Xsm_xdm.Store.node -> after:Xsm_xdm.Store.node option ->
  Xsm_xdm.Store.node -> t * int
(** Insert a new leaf.  The prime label itself never changes existing
    labels, but the document-order table must shift; the returned
    count is the number of order entries rewritten. *)
