(** Plain Dewey labels (Tatarinov et al., SIGMOD 2002) — reference
    [19] of the paper and the starting point of the Sedna scheme.

    A label is the vector of 1-based sibling positions on the path
    from the root.  All three structural predicates are as cheap as
    Sedna's, but insertion between adjacent siblings must renumber
    every following sibling (and their subtrees) — the cost the Sedna
    enhancement removes.  {!insert_after} returns how many existing
    labels had to change, the measure bench E6 compares. *)

type t = int list

val root : t
val compare : t -> t -> int
(** Document order. *)

val equal : t -> t -> bool
val is_ancestor : t -> t -> bool
val is_parent : t -> t -> bool
val depth : t -> int
val byte_size : t -> int
(** Storage cost model: 4 bytes per path component. *)

val child : t -> int -> t
(** [child parent i] — the label of the [i]-th (0-based) child. *)

val pp : Format.formatter -> t -> unit

(** {1 A mutable labelled forest for the update benchmark} *)

type forest

val forest_of_tree : Xsm_xdm.Store.t -> Xsm_xdm.Store.node -> forest
val label : forest -> Xsm_xdm.Store.node -> t

val insert_after :
  forest -> parent:Xsm_xdm.Store.node -> after:Xsm_xdm.Store.node option ->
  Xsm_xdm.Store.node -> t * int
(** Insert a new node after the given sibling (or first).  Returns its
    label and the number of existing labels that changed (renumbered
    following siblings and all their descendants). *)

val total_bytes : forest -> int
val max_bytes : forest -> int
