(** Identity constraints — [xs:unique], [xs:key] and [xs:keyref].

    §10 of the paper points out that, unlike MSL, an internal model
    with node identities can express identity constraints; this module
    is that capability made concrete.  A constraint is attached to a
    context element name (a simplification of attaching it to one
    element declaration, recorded in DESIGN.md): for every context
    instance, the selector path picks the constrained nodes and each
    field path contributes one value of the node's tuple.

    - [Unique]: among tuples with all fields present, no two are equal;
    - [Key]: additionally every field must be present;
    - [Keyref k]: every complete tuple must occur among the tuples of
      the key named [k].  Keyrefs resolve against the key tuples of
      the whole document (XSD's in-scope rule, simplified; noted in
      DESIGN.md).

    Field values compare by typed value when validation annotated one
    (so [01] and [1] are the same [xs:int] key), falling back to the
    string value. *)

type kind = Unique | Key | Keyref of string  (** referred key name *)

type def = {
  name : string;  (** unique among a schema's constraints *)
  context : Xsm_xml.Name.t;  (** element name the constraint is attached to *)
  kind : kind;
  selector : string;  (** relative XPath-subset, e.g. ["Book"] or [".//item"] *)
  fields : string list;  (** relative paths, e.g. ["ISBN"] or ["@id"] *)
}

val unique : name:string -> context:string -> selector:string -> string list -> def
val key : name:string -> context:string -> selector:string -> string list -> def

val keyref :
  name:string -> context:string -> refer:string -> selector:string -> string list -> def

type violation = {
  constraint_name : string;
  node_path : string;  (** rendering of the offending node *)
  message : string;
}

val pp_violation : Format.formatter -> violation -> unit

val check :
  Xsm_xdm.Store.t -> Xsm_xdm.Store.node -> def list -> (unit, violation list) result
(** Check every constraint over the document tree rooted at the given
    document node.  Selector/field paths that fail to parse are
    reported as violations of the constraint itself. *)
