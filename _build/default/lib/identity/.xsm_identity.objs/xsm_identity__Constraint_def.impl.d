lib/identity/constraint_def.ml: Format Hashtbl List Option Printf String Xsm_datatypes Xsm_xdm Xsm_xml Xsm_xpath
