lib/identity/constraint_def.mli: Format Xsm_xdm Xsm_xml
