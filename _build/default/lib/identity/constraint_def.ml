module Store = Xsm_xdm.Store
module Name = Xsm_xml.Name
module E = Xsm_xpath.Eval.Over_store
module Value = Xsm_datatypes.Value

type kind = Unique | Key | Keyref of string

type def = {
  name : string;
  context : Name.t;
  kind : kind;
  selector : string;
  fields : string list;
}

let unique ~name ~context ~selector fields =
  { name; context = Name.of_string_exn context; kind = Unique; selector; fields }

let key ~name ~context ~selector fields =
  { name; context = Name.of_string_exn context; kind = Key; selector; fields }

let keyref ~name ~context ~refer ~selector fields =
  { name; context = Name.of_string_exn context; kind = Keyref refer; selector; fields }

type violation = { constraint_name : string; node_path : string; message : string }

let pp_violation ppf v =
  Format.fprintf ppf "[%s] %s: %s" v.constraint_name v.node_path v.message

(* a comparable rendering of a field value: canonical typed value when
   the validator annotated one, else the raw string value *)
let field_value store node =
  match Store.typed_value store node with
  | [ v ] -> Value.kind_name v ^ ":" ^ Value.canonical_string v
  | [] -> "string:" ^ Store.string_value store node
  | vs -> String.concat "|" (List.map (fun v -> Value.kind_name v ^ ":" ^ Value.canonical_string v) vs)

let describe store node =
  match Store.node_name store node with
  | Some n -> Name.to_string n
  | None -> Store.node_kind store node

(* the tuple of a selected node: one optional value per field *)
let tuple_of store target fields_paths =
  List.map
    (fun field ->
      match E.eval_string store target field with
      | Ok [ n ] -> Some (field_value store n)
      | Ok [] -> None
      | Ok (_ :: _ :: _) -> raise (Invalid_argument "field selects several nodes")
      | Error e -> raise (Invalid_argument e))
    fields_paths

let complete tuple = List.for_all Option.is_some tuple
let render_tuple t = String.concat ", " (List.map (Option.value ~default:"()") t)

(* all elements with the context name, in document order *)
let context_instances store dnode name =
  List.filter
    (fun n ->
      Store.kind store n = Store.Kind.Element
      && match Store.node_name store n with Some m -> Name.equal m name | None -> false)
    (Store.descendants_or_self store dnode)

let check store dnode defs =
  let violations = ref [] in
  let report d node_path fmt =
    Printf.ksprintf
      (fun message ->
        violations := { constraint_name = d.name; node_path; message } :: !violations)
      fmt
  in
  (* first pass: collect the tuple sets of every Unique/Key constraint *)
  let tuples_of_def d =
    List.concat_map
      (fun ctx ->
        match E.eval_string store ctx d.selector with
        | Error e ->
          report d (describe store ctx) "selector: %s" e;
          []
        | Ok targets ->
          List.filter_map
            (fun target ->
              match tuple_of store target d.fields with
              | tuple -> Some (target, tuple)
              | exception Invalid_argument m ->
                report d (describe store target) "field: %s" m;
                None)
            targets)
      (context_instances store dnode d.context)
  in
  let key_tables = Hashtbl.create 8 in
  List.iter
    (fun d ->
      match d.kind with
      | Unique | Key ->
        let entries = tuples_of_def d in
        (* uniqueness among complete tuples *)
        let seen = Hashtbl.create 16 in
        List.iter
          (fun (target, tuple) ->
            if complete tuple then begin
              let k = render_tuple tuple in
              if Hashtbl.mem seen k then
                report d (describe store target) "duplicate tuple (%s)" k
              else Hashtbl.add seen k ()
            end
            else if d.kind = Key then
              report d (describe store target) "key field absent (tuple %s)"
                (render_tuple tuple))
          entries;
        Hashtbl.replace key_tables d.name seen
      | Keyref _ -> ())
    defs;
  (* second pass: keyrefs against the collected key tables *)
  List.iter
    (fun d ->
      match d.kind with
      | Keyref refer -> (
        match Hashtbl.find_opt key_tables refer with
        | None -> report d "-" "refers to unknown key %S" refer
        | Some table ->
          List.iter
            (fun (target, tuple) ->
              if complete tuple then begin
                let k = render_tuple tuple in
                if not (Hashtbl.mem table k) then
                  report d (describe store target) "dangling reference (%s)" k
              end)
            (tuples_of_def d))
      | Unique | Key -> ())
    defs;
  match !violations with [] -> Ok () | vs -> Error (List.rev vs)
