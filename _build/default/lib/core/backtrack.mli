(** Naive backtracking content-model matcher — the baseline for
    experiment E2.

    Interprets a group definition directly over a children name
    sequence by trying every split, the way a first-cut validator
    would.  Accepts exactly the same language as
    {!Content_automaton.matches} (a tested invariant) but with
    exponential worst-case time on choice-heavy models, which is the
    complexity gap the Glushkov construction closes. *)

val matches : Ast.group_def -> Ast.Name.t list -> bool

val matches_counting : Ast.group_def -> Ast.Name.t list -> bool * int
(** Also count the number of backtracking steps taken (match
    attempts), the measure reported by bench E2. *)
