(** Canonical forms of content models and schemas.

    The paper cites Novak & Kuznetsov, "Canonical Forms of XML
    Schemas" [15]; this module implements the group-level rewriting
    that work is about, restricted to rules that are
    language-preserving by construction (each is verified against
    {!Content_automaton.equivalent} in the property-test suite):

    - particles with [maxOccurs = 0] are dropped;
    - a nested group with the same combinator and trivial repetition
      is flattened into its parent ([a (b c) d] = [a b c d]);
    - a single-particle group wrapper composes its repetition with the
      particle's when one of the two is trivial, and in the
      star-absorption cases ([x{a,b}]{0,∞} = [x]{0,∞} when a ≤ 1);
    - duplicate alternatives of a choice are removed;
    - empty choices/sequences inside a combinator collapse.

    [simplify_schema] applies the rewriting to every content model of
    a schema, yielding a schema that validates exactly the same
    documents. *)

val simplify_group : Ast.group_def -> Ast.group_def
(** Fixpoint of the rewriting rules.  The result accepts the same
    language of children sequences. *)

val simplify_schema : Ast.schema -> Ast.schema

val equivalent_groups : Ast.group_def -> Ast.group_def -> (bool, string) result
(** Content-model language equivalence ({!Content_automaton.equivalent}
    on the compiled automata); [Error] when a model fails to
    compile. *)

val group_size : Ast.group_def -> int
(** Number of particles, recursively — the simplification measure. *)
