module Name = Xsm_xml.Name

type repetition = { min_occurs : int; max_occurs : int option }

let once = { min_occurs = 1; max_occurs = Some 1 }
let optional = { min_occurs = 0; max_occurs = Some 1 }
let many = { min_occurs = 0; max_occurs = None }
let repeat min_occurs max_occurs = { min_occurs; max_occurs }

let repetition_valid r =
  r.min_occurs >= 0 && match r.max_occurs with None -> true | Some m -> m >= r.min_occurs

let pp_repetition ppf r =
  match r.max_occurs with
  | None -> Format.fprintf ppf "(%d, unbounded)" r.min_occurs
  | Some m -> Format.fprintf ppf "(%d, %d)" r.min_occurs m

type combination = Sequence | Choice | All

let pp_combination ppf = function
  | Sequence -> Format.pp_print_string ppf "sequence"
  | Choice -> Format.pp_print_string ppf "choice"
  | All -> Format.pp_print_string ppf "all"

type type_ref =
  | Type_name of Name.t
  | Anonymous of complex_type
  | Anonymous_simple of Xsm_datatypes.Simple_type.t

and element_decl = {
  elem_name : Name.t;
  elem_type : type_ref;
  repetition : repetition;
  nillable : bool;
}

and particle = Element_particle of element_decl | Group_particle of group_def

and group_def = {
  particles : particle list;
  combination : combination;
  group_repetition : repetition;
}

and attribute_use = Required | Optional | Prohibited

and attribute_decl = {
  attr_name : Name.t;
  attr_type : Name.t;
  attr_use : attribute_use;
  attr_default : string option;
}

and complex_type =
  | Simple_content of { base : Name.t; attributes : attribute_decl list }
  | Complex_content of {
      mixed : bool;
      content : group_def option;
      attributes : attribute_decl list;
    }

type schema = {
  root : element_decl;
  complex_types : (Name.t * complex_type) list;
  simple_types : (Name.t * Xsm_datatypes.Simple_type.t) list;
}

let element_n ?(repetition = once) ?(nillable = false) name ty =
  { elem_name = name; elem_type = ty; repetition; nillable }

let element ?repetition ?nillable name ty =
  element_n ?repetition ?nillable (Name.of_string_exn name) ty

let named_type s = Type_name (Name.of_string_exn s)

let sequence ?(repetition = once) particles =
  { particles; combination = Sequence; group_repetition = repetition }

let choice ?(repetition = once) particles =
  { particles; combination = Choice; group_repetition = repetition }

let all_of ?(repetition = once) particles =
  { particles; combination = All; group_repetition = repetition }

let elem_p e = Element_particle e
let group_p g = Group_particle g

let attribute ?(use = Required) ?default name ty =
  {
    attr_name = Name.of_string_exn name;
    attr_type = Name.of_string_exn ty;
    attr_use = use;
    attr_default = default;
  }

let complex ?(mixed = false) ?(attributes = []) content =
  Complex_content { mixed; content; attributes }

let simple_content ~base attributes =
  Simple_content { base = Name.of_string_exn base; attributes }

let schema ?(complex_types = []) ?(simple_types = []) root =
  {
    root;
    complex_types = List.map (fun (n, t) -> (Name.of_string_exn n, t)) complex_types;
    simple_types = List.map (fun (n, t) -> (Name.of_string_exn n, t)) simple_types;
  }

let group_is_empty g = g.particles = []

let rec declared_element_names g =
  List.concat_map
    (function
      | Element_particle e -> [ e.elem_name ]
      | Group_particle inner -> declared_element_names inner)
    g.particles

let rec pp_type_ref ppf = function
  | Type_name n -> Name.pp ppf n
  | Anonymous ct -> Format.fprintf ppf "anonymous %a" pp_complex_type ct
  | Anonymous_simple st -> Format.fprintf ppf "anonymous %a" Xsm_datatypes.Simple_type.pp st

and pp_element_decl ppf e =
  Format.fprintf ppf "element %a : %a %a%s" Name.pp e.elem_name pp_type_ref e.elem_type
    pp_repetition e.repetition
    (if e.nillable then " nillable" else "")

and pp_particle ppf = function
  | Element_particle e -> pp_element_decl ppf e
  | Group_particle g -> pp_group ppf g

and pp_group ppf g =
  Format.fprintf ppf "@[<hv 2>%a %a {@ %a@ }@]" pp_combination g.combination pp_repetition
    g.group_repetition
    (Format.pp_print_list ~pp_sep:(fun ppf () -> Format.fprintf ppf ";@ ") pp_particle)
    g.particles

and pp_complex_type ppf = function
  | Simple_content { base; attributes } ->
    Format.fprintf ppf "simpleContent(base=%a, %d attributes)" Name.pp base
      (List.length attributes)
  | Complex_content { mixed; content; attributes } ->
    Format.fprintf ppf "complexContent(mixed=%b, %d attributes, %a)" mixed
      (List.length attributes)
      (Format.pp_print_option ~none:(fun ppf () -> Format.pp_print_string ppf "empty") pp_group)
      content

let pp_schema ppf s =
  Format.fprintf ppf "@[<v>schema root: %a@ %d complex types, %d simple types@]"
    pp_element_decl s.root (List.length s.complex_types) (List.length s.simple_types)
