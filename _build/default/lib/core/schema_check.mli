(** Schema well-formedness and type resolution (§3).

    The §3 requirement on type usage: every type [T] used in the
    schema satisfies [T ∈ dom(ctd)] or [T] is a (built-in or declared)
    simple type name or [T] is an anonymous definition.  Additional
    checks: repetition factors are sane, element names within one
    group are distinct (§2), simple-content bases are simple types,
    and every content model satisfies the Unique Particle Attribution
    constraint (checked via determinism of its Glushkov automaton). *)

type error = { context : string; message : string }

val pp_error : Format.formatter -> error -> unit

type resolved =
  | Resolved_simple of Xsm_datatypes.Simple_type.t
  | Resolved_complex of Ast.complex_type

val resolve : Ast.schema -> Ast.type_ref -> (resolved, string) result
(** Resolve a type reference: named complex types first, then declared
    simple types, then built-ins. *)

val resolve_simple : Ast.schema -> Ast.Name.t -> (Xsm_datatypes.Simple_type.t, string) result
(** Resolve a name that must denote a simple type (attribute types,
    simple-content bases). *)

val check : Ast.schema -> (unit, error list) result
(** All well-formedness checks; returns every violation found. *)
