let f doc schema = Validator.validate_document doc schema
let g store node = Xsm_xdm.Convert.to_document store node

let holds_for doc schema =
  match f doc schema with
  | Error es -> Error es
  | Ok (store, dnode) ->
    let back = g store dnode in
    Ok (Xsm_xml.Tree.equal_content ~ignore_whitespace:true back doc)

let text_roundtrip text schema =
  match Xsm_xml.Parser.parse_document text with
  | Error e -> Error (Xsm_xml.Parser.error_to_string e)
  | Ok doc -> (
    match holds_for doc schema with
    | Ok b -> Ok b
    | Error es ->
      Error (String.concat "; " (List.map Validator.error_to_string es)))
