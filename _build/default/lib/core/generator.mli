(** Deterministic workload generation: random document schemas and
    random valid instances.

    The paper evaluates its model on hand-written examples; the bench
    harness needs corpora of arbitrary size, so this module plays the
    role of the missing test-document collection (see the substitution
    table in DESIGN.md).  Everything is seeded — the same seed yields
    the same schema/document. *)

type rng

val rng : int -> rng
(** A splittable linear-congruential generator; independent of
    [Random] so results are stable across OCaml versions. *)

val int : rng -> int -> int
(** Uniform in [0, bound). *)

val sample_value : rng -> Xsm_datatypes.Simple_type.t -> string
(** A lexical form valid for the given simple type.  Handles all
    built-ins, enumerations and bounded integers; falls back to the
    base type's sample for other restrictions. *)

val instance :
  ?max_repeat:int -> ?depth_budget:int -> rng -> Ast.schema -> Xsm_xml.Tree.t
(** A random S-document: group repetitions draw counts in
    [min, min(max, min + max_repeat)] (default [max_repeat] 3); the
    depth budget (default 12) forces minimal expansions once
    exhausted, so recursive schemas terminate. *)

val random_schema : ?max_depth:int -> ?fanout:int -> rng -> Ast.schema
(** A random well-formed schema: nested sequences/choices over unique
    element names with simple leaf types; always passes
    {!Schema_check.check}. *)
