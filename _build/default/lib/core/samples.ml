open Ast
module Tree = Xsm_xml.Tree

(* Example 1: three element declarations. *)
let example1_elements =
  [
    element ~nillable:true "Comment" (named_type "xs:string");
    element ~repetition:(repeat 0 (Some 2)) "Author" (named_type "xs:string");
    element "Location"
      (Anonymous
         (complex
            (Some
               (sequence
                  [ elem_p (element "City" (named_type "xs:string")) ]))));
  ]

(* Example 2: a sequence group. *)
let example2_group =
  sequence
    [
      elem_p (element "B" (named_type "xs:string"));
      elem_p (element "C" (named_type "xs:string"));
    ]

(* Example 3: a choice group repeated without bound. *)
let example3_group =
  choice ~repetition:many
    [
      elem_p (element "zero" (named_type "xs:string"));
      elem_p (element "one" (named_type "xs:string"));
    ]

(* Example 5: complex type with simple content. *)
let example5_type = simple_content ~base:"xs:decimal" [ attribute "currency" "xs:string" ]

(* Example 6: mixed bookstore type. *)
let book_fields =
  [ "Title"; "Author"; "Date"; "ISBN"; "Publisher" ]

let book_anonymous_type =
  Anonymous
    (complex
       (Some
          (sequence
             (List.map (fun f -> elem_p (element f (named_type "xs:string"))) book_fields))))

let example6_type =
  Complex_content
    {
      mixed = true;
      content =
        Some
          (sequence
             [
               elem_p
                 (element ~repetition:(repeat 0 (Some 1000)) "Book" book_anonymous_type);
             ]);
      attributes = [ attribute "InStock" "xs:boolean"; attribute "Reviewer" "xs:string" ];
    }

(* Example 7: the BookStore schema. *)
let example7_schema =
  schema
    ~complex_types:
      [
        ( "BookPublication",
          complex
            (Some
               (sequence
                  (List.map
                     (fun f -> elem_p (element f (named_type "xs:string")))
                     book_fields))) );
      ]
    (element "BookStore"
       (Anonymous
          (complex
             (Some
                (sequence
                   [
                     elem_p
                       (element ~repetition:(repeat 1 None) "Book"
                          (named_type "BookPublication"));
                   ])))))

let book_element i =
  Tree.elem "Book"
    ~children:
      [
        Tree.element (Tree.elem "Title" ~children:[ Tree.text (Printf.sprintf "Book %d" i) ]);
        Tree.element (Tree.elem "Author" ~children:[ Tree.text (Printf.sprintf "Author %d" i) ]);
        Tree.element (Tree.elem "Date" ~children:[ Tree.text (Printf.sprintf "%d" (1990 + (i mod 30))) ]);
        Tree.element
          (Tree.elem "ISBN" ~children:[ Tree.text (Printf.sprintf "0-13-%06d-%d" i (i mod 10)) ]);
        Tree.element (Tree.elem "Publisher" ~children:[ Tree.text "Imprint" ]);
      ]

let bookstore_document ?(books = 2) () =
  Tree.document
    (Tree.elem "BookStore"
       ~children:(List.init (max 1 books) (fun i -> Tree.element (book_element i))))

let bookstore_invalid_document () =
  let broken =
    Tree.elem "Book"
      ~children:
        [
          Tree.element (Tree.elem "Title" ~children:[ Tree.text "No ISBN" ]);
          Tree.element (Tree.elem "Author" ~children:[ Tree.text "Nobody" ]);
          Tree.element (Tree.elem "Date" ~children:[ Tree.text "2004" ]);
          (* ISBN missing *)
          Tree.element (Tree.elem "Publisher" ~children:[ Tree.text "Imprint" ]);
        ]
  in
  Tree.document (Tree.elem "BookStore" ~children:[ Tree.element broken ])

(* Example 8: the library document. *)
let leaf name text = Tree.element (Tree.elem name ~children:[ Tree.text text ])

let example8_document =
  Tree.document
    (Tree.elem "library"
       ~children:
         [
           Tree.element
             (Tree.elem "book"
                ~children:
                  [
                    leaf "title" "Foundations of Databases";
                    leaf "author" "Abiteboul";
                    leaf "author" "Hull";
                    leaf "author" "Vianu";
                  ]);
           Tree.element
             (Tree.elem "book"
                ~children:
                  [
                    leaf "title" "An Introduction to Database Systems";
                    leaf "author" "Date";
                    Tree.element
                      (Tree.elem "issue"
                         ~children:
                           [ leaf "publisher" "Addison-Wesley"; leaf "year" "2004" ]);
                  ]);
           Tree.element
             (Tree.elem "paper"
                ~children:
                  [
                    leaf "title" "A Relational Model for Large Shared Data Banks";
                    leaf "author" "Codd";
                  ]);
           Tree.element
             (Tree.elem "paper"
                ~children:
                  [
                    leaf "title" "The Complexity of Relational Query Languages";
                    leaf "author" "Codd";
                  ]);
         ])

let library_schema =
  let issue_type =
    complex
      (Some
         (sequence
            [
              elem_p (element "publisher" (named_type "xs:string"));
              elem_p (element "year" (named_type "xs:gYear"));
            ]))
  in
  let book_type =
    complex
      (Some
         (sequence
            [
              elem_p (element "title" (named_type "xs:string"));
              elem_p (element ~repetition:(repeat 1 None) "author" (named_type "xs:string"));
              elem_p (element ~repetition:optional "issue" (named_type "Issue"));
            ]))
  in
  let paper_type =
    complex
      (Some
         (sequence
            [
              elem_p (element "title" (named_type "xs:string"));
              elem_p (element ~repetition:(repeat 1 None) "author" (named_type "xs:string"));
            ]))
  in
  schema
    ~complex_types:[ ("Issue", issue_type); ("Book", book_type); ("Paper", paper_type) ]
    (element "library"
       (Anonymous
          (complex
             (Some
                (sequence
                   [
                     elem_p (element ~repetition:many "book" (named_type "Book"));
                     elem_p (element ~repetition:many "paper" (named_type "Paper"));
                   ])))))

let library_document ?(books = 2) ?(papers = 2) () =
  let book i =
    Tree.element
      (Tree.elem "book"
         ~children:
           ([ leaf "title" (Printf.sprintf "Volume %d" i) ]
           @ List.init ((i mod 3) + 1) (fun j -> leaf "author" (Printf.sprintf "Author %d-%d" i j))
           @
           if i mod 2 = 0 then
             [
               Tree.element
                 (Tree.elem "issue"
                    ~children:
                      [
                        leaf "publisher" "Addison-Wesley";
                        leaf "year" (string_of_int (1970 + (i mod 50)));
                      ]);
             ]
           else []))
  in
  let paper i =
    Tree.element
      (Tree.elem "paper"
         ~children:
           [ leaf "title" (Printf.sprintf "Paper %d" i); leaf "author" (Printf.sprintf "Author %d" i) ])
  in
  Tree.document
    (Tree.elem "library"
       ~children:(List.init books book @ List.init papers paper))
