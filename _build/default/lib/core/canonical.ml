open Ast

let trivial (r : repetition) = r.min_occurs = 1 && r.max_occurs = Some 1

(* compose outer and inner repetition when safe:
   - either side trivial: take the other;
   - star absorption: inner {a,_} with a <= 1 under outer {0,None}
     (or inner {0/1,None} under outer {0/1,None}) collapses to {min*,None};
   returns None when no safe composition exists. *)
let compose_repetition ~outer ~inner =
  if trivial outer then Some inner
  else if trivial inner then Some outer
  else
    match outer.max_occurs, inner.max_occurs with
    | None, _ when outer.min_occurs <= 1 && inner.min_occurs <= 1 ->
      (* (x{a,b}){0|1,∞} with a ≤ 1: any count ≥ outer.min * inner.min *)
      Some { min_occurs = outer.min_occurs * inner.min_occurs; max_occurs = None }
    | _, None when outer.min_occurs <= 1 && inner.min_occurs <= 1 ->
      Some { min_occurs = outer.min_occurs * inner.min_occurs; max_occurs = None }
    | _ -> None

let rec equal_particle a b =
  match a, b with
  | Element_particle x, Element_particle y ->
    Name.equal x.elem_name y.elem_name
    && x.repetition = y.repetition
    && x.nillable = y.nillable
    && equal_type_ref x.elem_type y.elem_type
  | Group_particle x, Group_particle y ->
    x.combination = y.combination
    && x.group_repetition = y.group_repetition
    && List.equal equal_particle x.particles y.particles
  | (Element_particle _ | Group_particle _), _ -> false

and equal_type_ref a b =
  match a, b with
  | Type_name x, Type_name y -> Name.equal x y
  | Anonymous x, Anonymous y -> x == y || equal_complex x y
  | Anonymous_simple x, Anonymous_simple y -> x == y
  | (Type_name _ | Anonymous _ | Anonymous_simple _), _ -> false

and equal_complex a b =
  match a, b with
  | Simple_content x, Simple_content y ->
    Name.equal x.base y.base && x.attributes = y.attributes
  | Complex_content x, Complex_content y ->
    x.mixed = y.mixed
    && x.attributes = y.attributes
    && Option.equal
         (fun (g : group_def) (h : group_def) ->
           g.combination = h.combination
           && g.group_repetition = h.group_repetition
           && List.equal equal_particle g.particles h.particles)
         x.content y.content
  | (Simple_content _ | Complex_content _), _ -> false

let rec simplify_once (g : group_def) =
  let simplify_particle = function
    | Element_particle e -> Element_particle e
    | Group_particle inner -> Group_particle (simplify_once inner)
  in
  let particles = List.map simplify_particle g.particles in
  (* drop occurs-zero particles *)
  let particles =
    List.filter
      (fun p ->
        let r =
          match p with
          | Element_particle e -> e.repetition
          | Group_particle gr -> gr.group_repetition
        in
        r.max_occurs <> Some 0)
      particles
  in
  (* drop empty subgroups: an empty sequence/all accepts only epsilon,
     so inside a sequence it disappears; inside a choice, an empty
     group makes the choice nullable — keep it in that case *)
  let particles =
    match g.combination with
    | Sequence ->
      List.filter
        (function
          | Group_particle { particles = []; _ } -> false
          | Element_particle _ | Group_particle _ -> true)
        particles
    | Choice | All -> particles
  in
  (* flatten same-combinator nested groups with trivial repetition
     (never into or out of an All group) *)
  let particles =
    List.concat_map
      (function
        | Group_particle inner
          when inner.combination = g.combination
               && g.combination <> All
               && trivial inner.group_repetition ->
          inner.particles
        | p -> [ p ])
      particles
  in
  (* dedup identical alternatives of a choice *)
  let particles =
    match g.combination with
    | Choice ->
      List.fold_left
        (fun acc p -> if List.exists (equal_particle p) acc then acc else acc @ [ p ])
        [] particles
    | Sequence | All -> particles
  in
  (* unwrap a single-group particle by composing repetitions *)
  match particles with
  | [ Group_particle inner ] when g.combination <> All && inner.combination <> All -> (
    match compose_repetition ~outer:g.group_repetition ~inner:inner.group_repetition with
    | Some r -> { inner with group_repetition = r }
    | None -> { g with particles })
  | [ Element_particle e ] when g.combination <> All -> (
    (* a one-element group: fold the group repetition into the element
       when safe, keeping the group wrapper *)
    match compose_repetition ~outer:g.group_repetition ~inner:e.repetition with
    | Some r ->
      {
        particles = [ Element_particle { e with repetition = r } ];
        combination = Sequence;
        group_repetition = once;
      }
    | None -> { g with particles })
  | _ -> { g with particles }

let rec simplify_group g =
  let g' = simplify_once g in
  (* structural fixpoint; the rewriting strictly shrinks or stabilizes *)
  if
    g'.combination = g.combination
    && g'.group_repetition = g.group_repetition
    && List.equal equal_particle g'.particles g.particles
  then g'
  else simplify_group g'

let rec group_size g =
  List.fold_left
    (fun acc -> function
      | Element_particle _ -> acc + 1
      | Group_particle inner -> acc + 1 + group_size inner)
    0 g.particles

let rec simplify_type_ref = function
  | Type_name n -> Type_name n
  | Anonymous ct -> Anonymous (simplify_complex ct)
  | Anonymous_simple st -> Anonymous_simple st

and simplify_complex = function
  | Simple_content c -> Simple_content c
  | Complex_content { mixed; content; attributes } ->
    let content =
      match content with
      | None -> None
      | Some g ->
        let g' = simplify_group g in
        (* map the element types inside too *)
        let rec deep (gr : group_def) =
          {
            gr with
            particles =
              List.map
                (function
                  | Element_particle e ->
                    Element_particle { e with elem_type = simplify_type_ref e.elem_type }
                  | Group_particle inner -> Group_particle (deep inner))
                gr.particles;
          }
        in
        Some (deep g')
    in
    Complex_content { mixed; content; attributes }

let simplify_schema (s : schema) =
  {
    s with
    root = { s.root with elem_type = simplify_type_ref s.root.elem_type };
    complex_types = List.map (fun (n, ct) -> (n, simplify_complex ct)) s.complex_types;
  }

let equivalent_groups a b =
  match Content_automaton.make a, Content_automaton.make b with
  | Ok aa, Ok ab -> Ok (Content_automaton.equivalent aa ab)
  | Error e, _ | _, Error e -> Error e
