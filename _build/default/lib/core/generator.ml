module Tree = Xsm_xml.Tree
module Simple_type = Xsm_datatypes.Simple_type
module Builtin = Xsm_datatypes.Builtin
module Facet = Xsm_datatypes.Facet
module Value = Xsm_datatypes.Value

type rng = { mutable state : int64 }

let rng seed = { state = Int64.of_int (seed lxor 0x2545F491) }

let next r =
  (* 64-bit LCG (Knuth MMIX constants) *)
  r.state <- Int64.add (Int64.mul r.state 6364136223846793005L) 1442695040888963407L;
  Int64.to_int (Int64.shift_right_logical r.state 17) land max_int

let int r bound = if bound <= 0 then 0 else next r mod bound

let pick r xs = List.nth xs (int r (List.length xs))

(* ------------------------------------------------------------------ *)
(* Sample values per type                                              *)

let sample_primitive r (p : Builtin.primitive) =
  match p with
  | Builtin.P_string -> pick r [ "alpha"; "bravo"; "charlie delta"; "echo"; "" ]
  | Builtin.P_boolean -> pick r [ "true"; "false"; "1"; "0" ]
  | Builtin.P_decimal -> pick r [ "0"; "-12.5"; "3.14159"; "42"; "100000.001" ]
  | Builtin.P_float | Builtin.P_double ->
    pick r [ "0.0"; "-1.5E2"; "3.25"; "INF"; "12e3" ]
  | Builtin.P_duration -> pick r [ "P1Y"; "P3M"; "PT36H"; "-P2DT1M"; "P1Y2M3DT4H5M6S" ]
  | Builtin.P_date_time ->
    pick r
      [ "2004-10-28T09:00:00Z"; "1999-12-31T23:59:59"; "2005-01-01T00:00:00.5+02:00" ]
  | Builtin.P_time -> pick r [ "09:30:00"; "23:59:59.9Z"; "12:00:00-05:00" ]
  | Builtin.P_date -> pick r [ "2004-10-28"; "1969-07-20Z"; "2005-01-01+01:00" ]
  | Builtin.P_g_year_month -> pick r [ "2004-10"; "1999-01Z" ]
  | Builtin.P_g_year -> pick r [ "2004"; "1776"; "1999Z" ]
  | Builtin.P_g_month_day -> pick r [ "--10-28"; "--02-29" ]
  | Builtin.P_g_day -> pick r [ "---01"; "---28" ]
  | Builtin.P_g_month -> pick r [ "--10"; "--01" ]
  | Builtin.P_hex_binary -> pick r [ "DEADBEEF"; "00"; "CAFE" ]
  | Builtin.P_base64_binary -> pick r [ "aGVsbG8="; "AA=="; "c2VkbmE=" ]
  | Builtin.P_any_uri -> pick r [ "http://www.books.org"; "urn:isbn:0-13-0"; "a/b#c" ]
  | Builtin.P_qname -> pick r [ "xs:string"; "Book"; "lib:item" ]
  | Builtin.P_notation -> "note"

let sample_builtin r (b : Builtin.t) =
  match b with
  | Builtin.Primitive p -> sample_primitive r p
  | Builtin.Any_type | Builtin.Any_simple_type | Builtin.Any_atomic_type
  | Builtin.Untyped_atomic ->
    pick r [ "anything"; "at all" ]
  | Builtin.Normalized_string -> "no tabs here"
  | Builtin.Token -> "single spaced token"
  | Builtin.Language -> pick r [ "en"; "en-US"; "ru"; "de-CH-1996" ]
  | Builtin.Nmtoken -> pick r [ "tok-1"; "a.b.c"; "x" ]
  | Builtin.Name -> pick r [ "elem"; "ns:elem"; "_x" ]
  | Builtin.Ncname | Builtin.Id | Builtin.Idref | Builtin.Entity ->
    pick r [ "n1"; "local-name"; "_under" ]
  | Builtin.Integer -> pick r [ "0"; "-7"; "123456789" ]
  | Builtin.Non_positive_integer -> pick r [ "0"; "-42" ]
  | Builtin.Negative_integer -> pick r [ "-1"; "-999" ]
  | Builtin.Long -> pick r [ "0"; "-9223372036854775808"; "42" ]
  | Builtin.Int -> pick r [ "2147483647"; "-1"; "7" ]
  | Builtin.Short -> pick r [ "32767"; "-32768"; "5" ]
  | Builtin.Byte -> pick r [ "127"; "-128"; "3" ]
  | Builtin.Non_negative_integer -> pick r [ "0"; "77" ]
  | Builtin.Unsigned_long -> pick r [ "18446744073709551615"; "12" ]
  | Builtin.Unsigned_int -> pick r [ "4294967295"; "8" ]
  | Builtin.Unsigned_short -> pick r [ "65535"; "9" ]
  | Builtin.Unsigned_byte -> pick r [ "255"; "0" ]
  | Builtin.Positive_integer -> pick r [ "1"; "1000" ]
  | Builtin.Nmtokens -> "one two three"
  | Builtin.Idrefs -> "r1 r2"
  | Builtin.Entities -> "e1"

let rec sample_value r (st : Simple_type.t) =
  match st with
  | Simple_type.Builtin b -> sample_builtin r b
  | Simple_type.Restriction { base; facets; _ } -> (
    let enum =
      List.find_map (function Facet.Enumeration vs -> Some vs | _ -> None) facets
    in
    match enum with
    | Some (_ :: _ as vs) -> Value.canonical_string (pick r vs)
    | Some [] | None ->
      (* respect integer bounds if present, otherwise sample the base
         until a facet-valid value appears (bounded attempts) *)
      let candidate () = sample_value r base in
      let rec attempt k =
        let v = candidate () in
        if k = 0 || Simple_type.is_valid st v then v else attempt (k - 1)
      in
      attempt 16)
  | Simple_type.List { item; _ } ->
    String.concat " " (List.init (1 + int r 3) (fun _ -> sample_value r item))
  | Simple_type.Union { members; _ } -> sample_value r (pick r members)

(* ------------------------------------------------------------------ *)
(* Instances                                                           *)

let draw_count r (rep : Ast.repetition) ~max_repeat ~minimal =
  if minimal then rep.Ast.min_occurs
  else
    let lo = rep.Ast.min_occurs in
    let hi =
      match rep.Ast.max_occurs with
      | Some m -> min m (lo + max_repeat)
      | None -> lo + max_repeat
    in
    lo + int r (hi - lo + 1)

let instance ?(max_repeat = 3) ?(depth_budget = 12) r (schema : Ast.schema) =
  let rec element_tree depth (decl : Ast.element_decl) =
    let minimal = depth <= 0 in
    let children, attrs =
      match Schema_check.resolve schema decl.Ast.elem_type with
      | Error _ -> ([], [])
      | Ok (Schema_check.Resolved_simple st) ->
        ([ Tree.Text (sample_value r st) ], [])
      | Ok (Schema_check.Resolved_complex (Ast.Simple_content { base; attributes })) ->
        let text =
          match Schema_check.resolve_simple schema base with
          | Ok st -> [ Tree.Text (sample_value r st) ]
          | Error _ -> []
        in
        (text, attribute_values attributes)
      | Ok (Schema_check.Resolved_complex (Ast.Complex_content { mixed; content; attributes }))
        ->
        let elements =
          match content with
          | None -> []
          | Some g -> group_children (depth - 1) ~minimal g
        in
        let with_text =
          if mixed && not minimal then interleave_text elements else elements
        in
        (with_text, attribute_values attributes)
    in
    Tree.Element { Tree.name = decl.Ast.elem_name; attributes = attrs; children }
  and attribute_values decls =
    List.map
      (fun (d : Ast.attribute_decl) ->
        let value =
          match Schema_check.resolve_simple schema d.Ast.attr_type with
          | Ok st -> sample_value r st
          | Error _ -> ""
        in
        { Tree.name = d.Ast.attr_name; value })
      decls
  and group_children depth ~minimal (g : Ast.group_def) =
    let copies = draw_count r g.Ast.group_repetition ~max_repeat ~minimal in
    List.concat
      (List.init copies (fun _ ->
           match g.Ast.combination with
           | Ast.Sequence ->
             List.concat_map (particle_children depth ~minimal) g.Ast.particles
           | Ast.Choice -> (
             match g.Ast.particles with
             | [] -> []
             | ps -> particle_children depth ~minimal (pick r ps))
           | Ast.All ->
             (* each particle 0/1 times, in a shuffled order *)
             let parts =
               List.concat_map (particle_children depth ~minimal) g.Ast.particles
             in
             let tagged = List.map (fun p -> (int r 1000, p)) parts in
             List.map snd (List.sort (fun (a, _) (b, _) -> compare a b) tagged)))
  and particle_children depth ~minimal = function
    | Ast.Element_particle e ->
      let copies = draw_count r e.Ast.repetition ~max_repeat ~minimal in
      List.init copies (fun _ -> element_tree depth e)
    | Ast.Group_particle g -> group_children depth ~minimal g
  and interleave_text elements =
    List.concat_map
      (fun e -> [ Tree.Text (pick r [ " see also "; " note "; " -- " ]); e ])
      elements
    @ [ Tree.Text " end." ]
  in
  match element_tree depth_budget schema.Ast.root with
  | Tree.Element e -> Tree.document e
  | Tree.Text _ | Tree.Cdata _ | Tree.Comment _ | Tree.Pi _ -> assert false

(* ------------------------------------------------------------------ *)
(* Random schemas                                                      *)

let leaf_types =
  [ "xs:string"; "xs:integer"; "xs:boolean"; "xs:decimal"; "xs:date"; "xs:NMTOKEN" ]

(* Nested repetition can produce content models that genuinely violate
   UPA (e.g. (e{0,2}){1,3}), so generation retries until the schema
   passes the checker. *)
let rec random_schema ?(max_depth = 4) ?(fanout = 4) r =
  let candidate = random_schema_once ~max_depth ~fanout r in
  match Schema_check.check candidate with
  | Ok () -> candidate
  | Error _ -> random_schema ~max_depth ~fanout r

and random_schema_once ~max_depth ~fanout r =
  let counter = ref 0 in
  let fresh_name prefix =
    incr counter;
    Printf.sprintf "%s%d" prefix !counter
  in
  let random_rep () =
    match int r 5 with
    | 0 -> Ast.once
    | 1 -> Ast.optional
    | 2 -> Ast.many
    | 3 -> Ast.repeat 1 None
    | _ -> Ast.repeat (int r 2) (Some (1 + int r 3))
  in
  let rec random_group depth =
    let n = 1 + int r fanout in
    let particles =
      List.init n (fun _ ->
          if depth > 0 && int r 4 = 0 then Ast.group_p (random_group (depth - 1))
          else Ast.elem_p (random_element (depth - 1)))
    in
    if int r 2 = 0 then Ast.sequence ~repetition:(random_rep ()) particles
    else Ast.choice ~repetition:(random_rep ()) particles
  and random_element depth =
    let name = fresh_name "e" in
    if depth <= 0 || int r 3 = 0 then
      Ast.element ~repetition:(random_rep ()) name (Ast.named_type (pick r leaf_types))
    else
      Ast.element ~repetition:(random_rep ()) name
        (Ast.Anonymous
           (Ast.complex
              ~attributes:
                (if int r 2 = 0 then [ Ast.attribute (fresh_name "a") "xs:string" ] else [])
              (Some (random_group (depth - 1)))))
  in
  Ast.schema
    (Ast.element "root"
       (Ast.Anonymous (Ast.complex (Some (random_group (max_depth - 1))))))
