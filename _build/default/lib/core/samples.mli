(** The paper's worked examples (Examples 1–8) as ready-made values,
    used by tests, examples and benches. *)

val example1_elements : Ast.element_decl list
(** Example 1: three element declarations — nillable Comment,
    Author (0..2), anonymous-typed Location. *)

val example2_group : Ast.group_def
(** Example 2: sequence of B and C. *)

val example3_group : Ast.group_def
(** Example 3: choice of zero | one, repeated 0..unbounded. *)

val example5_type : Ast.complex_type
(** Example 5: simple content — decimal base with a currency
    attribute. *)

val example6_type : Ast.complex_type
(** Example 6: mixed complex content — Book (0..1000) with five
    string children, plus InStock and Reviewer attributes. *)

val example7_schema : Ast.schema
(** Example 7: the BookStore schema with the named BookPublication
    type. *)

val bookstore_document : ?books:int -> unit -> Xsm_xml.Tree.t
(** A valid instance of {!example7_schema} with the given number of
    books (default 2). *)

val bookstore_invalid_document : unit -> Xsm_xml.Tree.t
(** An instance violating the content model (missing ISBN). *)

val example8_document : Xsm_xml.Tree.t
(** Example 8: the library document (two books, two papers) used to
    illustrate the descriptive schema in §9.1. *)

val library_schema : Ast.schema
(** A schema the Example 8 document validates against (the paper only
    shows the instance; the schema is implied). *)

val library_document : ?books:int -> ?papers:int -> unit -> Xsm_xml.Tree.t
(** A scaled-up Example 8 document for benches. *)
