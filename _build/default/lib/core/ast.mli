(** Abstract syntax of element declarations, type definitions and
    document schemas — §2 and §3 of the paper, with the same
    constructors the paper's grammar uses.

    The paper's [Seq], [FM], [Union], [Pair] and [Tuple] syntactic
    type constructors map to OCaml lists, association lists, variants
    and records. *)

module Name = Xsm_xml.Name

(** [RepetitionFactor = Pair(Minimum, Maximum)]; [Maximum =
    Union(NatNumber, {"unbounded"})]. *)
type repetition = {
  min_occurs : int;
  max_occurs : int option;  (** [None] is ["unbounded"] *)
}

val once : repetition
(** The default [(1, 1)]. *)

val optional : repetition
(** [(0, 1)]. *)

val many : repetition
(** [(0, unbounded)]. *)

val repeat : int -> int option -> repetition
val repetition_valid : repetition -> bool
(** min non-negative and min <= max when max is bounded. *)

val pp_repetition : Format.formatter -> repetition -> unit

(** [CombinationFactor = Enumeration("sequence", "choice")], extended
    with the footnote-2 "all option definition" (the paper's
    [Interleave] type constructor): the elements of the group in any
    order, each at most once. *)
type combination = Sequence | Choice | All

val pp_combination : Format.formatter -> combination -> unit

(** A reference to a type: a (simple or complex) type name, or an
    inline anonymous definition — [Type = Union(TypeName,
    AnonymousTypeDefinition)]. *)
type type_ref =
  | Type_name of Name.t
  | Anonymous of complex_type
  | Anonymous_simple of Xsm_datatypes.Simple_type.t
      (** extension beyond the paper's core: inline simple types *)

(** [ElementDeclaration = Tuple(ElemName, Type, RepetitionFactor,
    NillIndicator)]. *)
and element_decl = {
  elem_name : Name.t;
  elem_type : type_ref;
  repetition : repetition;
  nillable : bool;
}

(** [GroupDefinition = Tuple(Seq(LocalGroupDefinition),
    CombinationFactor, RepetitionFactor)].  The paper's footnote 1
    allows nested group definitions; we implement the full form. *)
and particle =
  | Element_particle of element_decl
  | Group_particle of group_def

and group_def = {
  particles : particle list;
  combination : combination;
  group_repetition : repetition;
}

(** Attribute occurrence properties — the REQUIRED / PROHIBITED /
    OPTIONAL the paper's §2 mentions and elides "for simplicity". *)
and attribute_use = Required | Optional | Prohibited

(** [AttributeDeclarations = FM(AttrName, SimpleTypeName)] — a finite
    mapping, kept in declaration order, extended with the use property
    and an optional default value (inserted by validation when the
    attribute is absent). *)
and attribute_decl = {
  attr_name : Name.t;
  attr_type : Name.t;
  attr_use : attribute_use;
  attr_default : string option;
}

(** [ComplexTypeDefinition]: simple content (a simple type extended
    with attributes) or complex content (mixed indicator, optional
    local element declarations, attributes). *)
and complex_type =
  | Simple_content of { base : Name.t; attributes : attribute_decl list }
  | Complex_content of {
      mixed : bool;
      content : group_def option;  (** [None] or empty particles = empty content *)
      attributes : attribute_decl list;
    }

(** [DocumentSchema]: one global element declaration plus named
    complex (and, as an extension, simple) type definitions. *)
type schema = {
  root : element_decl;
  complex_types : (Name.t * complex_type) list;
  simple_types : (Name.t * Xsm_datatypes.Simple_type.t) list;
}

(** {1 Smart constructors} *)

val element :
  ?repetition:repetition -> ?nillable:bool -> string -> type_ref -> element_decl

val element_n :
  ?repetition:repetition -> ?nillable:bool -> Name.t -> type_ref -> element_decl

val named_type : string -> type_ref
val sequence : ?repetition:repetition -> particle list -> group_def
val choice : ?repetition:repetition -> particle list -> group_def

val all_of : ?repetition:repetition -> particle list -> group_def
(** An interleave ([xsd:all]) group.  Well-formedness (checked by
    [Schema_check]): element particles only, each with
    [maxOccurs <= 1], and the group itself occurring at most once. *)

val elem_p : element_decl -> particle
val group_p : group_def -> particle
val attribute :
  ?use:attribute_use -> ?default:string -> string -> string -> attribute_decl
(** Defaults to [Required], matching §5.3.1 where every declared
    attribute is present in the instance (the XSD reader maps the
    concrete syntax's W3C default, [Optional], explicitly). *)

val complex :
  ?mixed:bool -> ?attributes:attribute_decl list -> group_def option -> complex_type

val simple_content : base:string -> attribute_decl list -> complex_type

val schema :
  ?complex_types:(string * complex_type) list ->
  ?simple_types:(string * Xsm_datatypes.Simple_type.t) list ->
  element_decl ->
  schema

(** {1 Observation} *)

val group_is_empty : group_def -> bool
(** Empty content: no particles (§2: "A group definition has the empty
    content if the sequence of local group definitions is empty"). *)

val declared_element_names : group_def -> Name.t list
(** Names of the element particles, in order, recursing into nested
    groups. *)

val pp_type_ref : Format.formatter -> type_ref -> unit
val pp_element_decl : Format.formatter -> element_decl -> unit
val pp_group : Format.formatter -> group_def -> unit
val pp_complex_type : Format.formatter -> complex_type -> unit
val pp_schema : Format.formatter -> schema -> unit
