lib/core/schema_check.mli: Ast Format Xsm_datatypes
