lib/core/generator.ml: Ast Int64 List Printf Schema_check String Xsm_datatypes Xsm_xml
