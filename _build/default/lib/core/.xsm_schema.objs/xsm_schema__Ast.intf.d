lib/core/ast.mli: Format Xsm_datatypes Xsm_xml
