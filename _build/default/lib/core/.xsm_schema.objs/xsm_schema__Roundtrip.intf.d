lib/core/roundtrip.mli: Ast Validator Xsm_xdm Xsm_xml
