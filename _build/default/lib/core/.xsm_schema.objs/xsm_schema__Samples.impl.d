lib/core/samples.ml: Ast List Printf Xsm_xml
