lib/core/samples.mli: Ast Xsm_xml
