lib/core/canonical.ml: Ast Content_automaton List Name Option
