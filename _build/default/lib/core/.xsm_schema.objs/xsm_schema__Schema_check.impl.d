lib/core/schema_check.ml: Ast Content_automaton Format Hashtbl List Option Printf Xsm_datatypes Xsm_xml
