lib/core/roundtrip.ml: List String Validator Xsm_xdm Xsm_xml
