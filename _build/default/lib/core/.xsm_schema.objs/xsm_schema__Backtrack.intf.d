lib/core/backtrack.mli: Ast
