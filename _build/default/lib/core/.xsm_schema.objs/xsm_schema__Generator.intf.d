lib/core/generator.mli: Ast Xsm_datatypes Xsm_xml
