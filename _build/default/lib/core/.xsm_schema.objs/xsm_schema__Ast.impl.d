lib/core/ast.ml: Format List Xsm_datatypes Xsm_xml
