lib/core/validator.mli: Ast Format Xsm_xdm Xsm_xml
