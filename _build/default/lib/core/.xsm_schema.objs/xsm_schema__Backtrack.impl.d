lib/core/backtrack.ml: Ast List Xsm_xml
