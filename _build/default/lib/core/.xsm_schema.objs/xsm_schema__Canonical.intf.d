lib/core/canonical.mli: Ast
