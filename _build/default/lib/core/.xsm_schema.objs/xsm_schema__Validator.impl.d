lib/core/validator.ml: Ast Content_automaton Format List Option Printf Result Schema_check String Xsm_datatypes Xsm_xdm Xsm_xml
