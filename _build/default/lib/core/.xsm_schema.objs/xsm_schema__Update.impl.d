lib/core/update.ml: List Printf Validator Xsm_xdm Xsm_xml
