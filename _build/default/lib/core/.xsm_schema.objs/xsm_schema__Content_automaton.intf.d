lib/core/content_automaton.mli: Ast
