lib/core/update.mli: Ast Xsm_xdm Xsm_xml
