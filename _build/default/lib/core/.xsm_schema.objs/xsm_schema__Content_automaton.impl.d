lib/core/content_automaton.ml: Array Ast Fun Hashtbl List Option Printf Queue String Xsm_xml
