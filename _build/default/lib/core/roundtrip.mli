(** The §8 theorem, executable.

    For a document schema [S] there is a function [f] mapping
    S-documents to S-trees and a serialization [g] with
    [g (f X) =_c X].  Here [f] is {!Validator.validate_document} and
    [g] is {!Xsm_xdm.Convert.to_document}; {!holds_for} checks the
    content equality for one document, which the property-test suite
    runs over generated corpora. *)

val f :
  Xsm_xml.Tree.t ->
  Ast.schema ->
  (Xsm_xdm.Store.t * Xsm_xdm.Store.node, Validator.error list) result
(** Document to S-tree (load + validate + annotate). *)

val g : Xsm_xdm.Store.t -> Xsm_xdm.Store.node -> Xsm_xml.Tree.t
(** S-tree to document (serialization). *)

val holds_for : Xsm_xml.Tree.t -> Ast.schema -> (bool, Validator.error list) result
(** [holds_for x s] computes [g (f x) =_c x]; [Error] when [x] is not
    an S-document (the theorem's hypothesis fails). *)

val text_roundtrip : string -> Ast.schema -> (bool, string) result
(** The same check starting from serialized text: parse, [f], [g],
    print, reparse, compare. *)
