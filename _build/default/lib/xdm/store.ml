module Kind = struct
  type t = Document | Element | Attribute | Text

  let to_string = function
    | Document -> "document"
    | Element -> "element"
    | Attribute -> "attribute"
    | Text -> "text"

  let equal a b = a = b
  let pp ppf k = Format.pp_print_string ppf (to_string k)
end

type node = int

type data = {
  kind : Kind.t;
  mutable name : Xsm_xml.Name.t option;
  mutable parent : node option;
  mutable children : node list;  (* reversed during building? no: kept in order *)
  mutable attributes : node list;
  mutable type_name : Xsm_xml.Name.t option;
  mutable content : string;  (* own string value for text and attribute nodes *)
  mutable typed : Xsm_datatypes.Value.t list option;
  mutable nilled : bool option;
  mutable base_uri : string option;
}

type t = { mutable nodes : data array; mutable size : int }

let create () = { nodes = [||]; size = 0 }

let get store n =
  if n < 0 || n >= store.size then invalid_arg "Store: foreign node identifier";
  store.nodes.(n)

let add store data =
  if store.size = Array.length store.nodes then begin
    let cap = max 16 (store.size * 2) in
    let bigger = Array.make cap data in
    Array.blit store.nodes 0 bigger 0 store.size;
    store.nodes <- bigger
  end;
  store.nodes.(store.size) <- data;
  store.size <- store.size + 1;
  store.size - 1

let node_count store = store.size

let count_kind store k =
  let c = ref 0 in
  for i = 0 to store.size - 1 do
    if Kind.equal store.nodes.(i).kind k then incr c
  done;
  !c

let blank kind =
  {
    kind;
    name = None;
    parent = None;
    children = [];
    attributes = [];
    type_name = None;
    content = "";
    typed = None;
    nilled = None;
    base_uri = None;
  }

let untyped_atomic_name = Xsm_xml.Name.make ~prefix:"xdt" "untypedAtomic"
let any_type_name = Xsm_xml.Name.make ~prefix:"xs" "anyType"

let new_document ?base_uri store =
  let d = blank Kind.Document in
  d.base_uri <- base_uri;
  add store d

let new_element ?base_uri ?type_name store name =
  let d = blank Kind.Element in
  d.name <- Some name;
  d.base_uri <- base_uri;
  d.type_name <- Some (Option.value ~default:any_type_name type_name);
  d.nilled <- Some false;
  add store d

let new_attribute ?type_name ?typed_value store name value =
  let d = blank Kind.Attribute in
  d.name <- Some name;
  d.content <- value;
  d.type_name <- Some (Option.value ~default:untyped_atomic_name type_name);
  d.typed <- typed_value;
  add store d

let new_text store content =
  let d = blank Kind.Text in
  d.content <- content;
  d.type_name <- Some untyped_atomic_name;
  add store d

(* ------------------------------------------------------------------ *)
(* Linking                                                             *)

let check_can_have_children store parent child =
  let pd = get store parent and cd = get store child in
  (match pd.kind with
  | Kind.Document | Kind.Element -> ()
  | Kind.Attribute | Kind.Text ->
    invalid_arg "append_child: attribute and text nodes have no children");
  (match cd.kind with
  | Kind.Element | Kind.Text -> ()
  | Kind.Document -> invalid_arg "append_child: a document node cannot be a child"
  | Kind.Attribute -> invalid_arg "append_child: use attach_attribute for attributes");
  (match pd.kind, cd.kind with
  | Kind.Document, Kind.Text -> invalid_arg "append_child: a document child must be an element"
  | Kind.Document, Kind.Element when pd.children <> [] ->
    invalid_arg "append_child: a document node has exactly one element child"
  | _ -> ());
  if cd.parent <> None then invalid_arg "append_child: node already has a parent";
  (pd, cd)

let append_child store parent child =
  let pd, cd = check_can_have_children store parent child in
  cd.parent <- Some parent;
  if cd.base_uri = None then cd.base_uri <- pd.base_uri;
  pd.children <- pd.children @ [ child ]

let append_children store parent children =
  match children with
  | [] -> ()
  | _ ->
    let pd = get store parent in
    if
      pd.kind = Kind.Document
      && List.length pd.children + List.length children > 1
    then invalid_arg "append_children: a document node has exactly one element child";
    List.iter
      (fun child ->
        let pd, cd = check_can_have_children store parent child in
        ignore pd;
        cd.parent <- Some parent;
        if cd.base_uri = None then cd.base_uri <- (get store parent).base_uri)
      children;
    let pd = get store parent in
    pd.children <- pd.children @ children

let insert_child_before store parent ~before child =
  let pd, cd = check_can_have_children store parent child in
  if not (List.mem before pd.children) then
    invalid_arg "insert_child_before: anchor is not a child of the parent";
  cd.parent <- Some parent;
  if cd.base_uri = None then cd.base_uri <- pd.base_uri;
  pd.children <-
    List.concat_map (fun c -> if c = before then [ child; c ] else [ c ]) pd.children

let remove_child store parent child =
  let pd = get store parent and cd = get store child in
  if cd.parent <> Some parent then invalid_arg "remove_child: not a child of this parent";
  pd.children <- List.filter (fun c -> c <> child) pd.children;
  cd.parent <- None

let attach_attribute store element attribute =
  let ed = get store element and ad = get store attribute in
  if ed.kind <> Kind.Element then invalid_arg "attach_attribute: owner must be an element";
  if ad.kind <> Kind.Attribute then invalid_arg "attach_attribute: node is not an attribute";
  if ad.parent <> None then invalid_arg "attach_attribute: attribute already attached";
  (match ad.name with
  | Some n ->
    let clash =
      List.exists
        (fun a -> match (get store a).name with Some m -> Xsm_xml.Name.equal m n | None -> false)
        ed.attributes
    in
    if clash then invalid_arg "attach_attribute: duplicate attribute name"
  | None -> ());
  ad.parent <- Some element;
  if ad.base_uri = None then ad.base_uri <- ed.base_uri;
  ed.attributes <- ed.attributes @ [ attribute ]

let detach_attribute store element attribute =
  let ed = get store element and ad = get store attribute in
  if ad.parent <> Some element then invalid_arg "detach_attribute: not an attribute of this element";
  ed.attributes <- List.filter (fun a -> a <> attribute) ed.attributes;
  ad.parent <- None

let set_nilled store n b =
  let d = get store n in
  if d.kind <> Kind.Element then invalid_arg "set_nilled: not an element";
  d.nilled <- Some b

let set_content store n content =
  let d = get store n in
  match d.kind with
  | Kind.Text | Kind.Attribute ->
    d.content <- content;
    d.typed <- None
  | Kind.Document | Kind.Element ->
    invalid_arg "set_content: only text and attribute nodes hold content"

let set_typed_value store n vs = (get store n).typed <- Some vs

let set_type_name store n name =
  let d = get store n in
  d.type_name <- name

(* ------------------------------------------------------------------ *)
(* Accessors                                                           *)

let kind store n = (get store n).kind
let node_kind store n = Kind.to_string (kind store n)

let node_name store n =
  let d = get store n in
  match d.kind with Kind.Document | Kind.Text -> None | Kind.Element | Kind.Attribute -> d.name

let parent store n = (get store n).parent

let children store n =
  let d = get store n in
  match d.kind with
  | Kind.Document | Kind.Element -> d.children
  | Kind.Attribute | Kind.Text -> []

let attributes store n =
  let d = get store n in
  match d.kind with
  | Kind.Element -> d.attributes
  | Kind.Document | Kind.Attribute | Kind.Text -> []

let base_uri store n = (get store n).base_uri

let nilled store n =
  let d = get store n in
  match d.kind with
  | Kind.Element -> d.nilled
  | Kind.Document | Kind.Attribute | Kind.Text -> None

let type_name store n =
  let d = get store n in
  match d.kind with Kind.Document -> None | Kind.Element | Kind.Attribute | Kind.Text -> d.type_name

let rec add_string_value store buf n =
  let d = get store n in
  match d.kind with
  | Kind.Text | Kind.Attribute -> Buffer.add_string buf d.content
  | Kind.Document | Kind.Element -> List.iter (add_string_value store buf) d.children

let string_value store n =
  let d = get store n in
  match d.kind with
  | Kind.Text | Kind.Attribute -> d.content
  | Kind.Document | Kind.Element ->
    let buf = Buffer.create 64 in
    add_string_value store buf n;
    Buffer.contents buf

let typed_value store n =
  let d = get store n in
  match d.typed with
  | Some vs -> vs
  | None -> [ Xsm_datatypes.Value.Untyped_atomic (string_value store n) ]

(* ------------------------------------------------------------------ *)
(* Identity and traversal                                              *)

let equal_node (a : node) (b : node) = a = b
let compare_node (a : node) (b : node) = compare a b
let node_id (n : node) = n

let rec root store n =
  match parent store n with None -> n | Some p -> root store p

let descendants_or_self store n =
  let rec go acc n =
    let acc = n :: acc in
    let acc = List.fold_left (fun acc a -> a :: acc) acc (attributes store n) in
    List.fold_left go acc (children store n)
  in
  List.rev (go [] n)

let subtree_size store n = List.length (descendants_or_self store n)

let pp_node store ppf n =
  let d = get store n in
  match d.kind with
  | Kind.Document -> Format.fprintf ppf "document#%d" n
  | Kind.Element ->
    Format.fprintf ppf "element#%d<%a>" n (Format.pp_print_option Xsm_xml.Name.pp) d.name
  | Kind.Attribute ->
    Format.fprintf ppf "attribute#%d{%a=%S}" n
      (Format.pp_print_option Xsm_xml.Name.pp)
      d.name d.content
  | Kind.Text -> Format.fprintf ppf "text#%d%S" n d.content
