(** The state algebra of §6.1: a database state as a many-sorted
    algebra.

    The carriers are disjoint sets of node identifiers — one per node
    kind — plus the value spaces supplied by [Xsm_datatypes].  The
    operations are the ten node accessors of §5.  A {!t} holds one
    state; creating nodes and linking them moves the database to a new
    state, as the paper's "database evolves through different database
    states" prescribes (we mutate in place and regard each mutation as
    a state transition).

    Node identifiers are abstract; equality of identifiers is node
    identity.  Accessors on an identifier of the wrong kind return the
    empty sequence exactly as §6.1 dictates (e.g. [children] of an
    attribute node is []). *)

type t
(** A database state: the algebra's carriers and accessor values. *)

type node
(** A node identifier.  Valid only for the store that created it. *)

module Kind : sig
  type t = Document | Element | Attribute | Text

  val to_string : t -> string
  (** The [node-kind] accessor string: "document", "element",
      "attribute" or "text". *)

  val equal : t -> t -> bool
  val pp : Format.formatter -> t -> unit
end

val create : unit -> t
(** An empty database state: all carriers empty. *)

val node_count : t -> int
(** Total number of nodes across all carriers. *)

val count_kind : t -> Kind.t -> int
(** Size of one carrier, [|A_Element|] etc. *)

(** {1 Node construction}

    Constructors set the §6.1 fixed accessor values for each kind;
    the tree-shape accessors ([parent], [children], [attributes]) are
    established by the linking functions below. *)

val new_document : ?base_uri:string -> t -> node
val new_element :
  ?base_uri:string -> ?type_name:Xsm_xml.Name.t -> t -> Xsm_xml.Name.t -> node

val new_attribute :
  ?type_name:Xsm_xml.Name.t ->
  ?typed_value:Xsm_datatypes.Value.t list ->
  t ->
  Xsm_xml.Name.t ->
  string ->
  node

val new_text : t -> string -> node

(** {1 Linking}

    [append_child store parent child] sets [parent child = parent] and
    appends [child] to [children parent].  Raises [Invalid_argument]
    when the shape constraints of §6.1 would be violated: only
    document and element nodes have children; a document node has at
    most one element child; attribute nodes are attached with
    [attach_attribute] only. *)

val append_child : t -> node -> node -> unit

val append_children : t -> node -> node list -> unit
(** Bulk [append_child]: one list concatenation instead of one per
    child, so loading a node with [n] children is O(n), not O(n²). *)

val insert_child_before : t -> node -> before:node -> node -> unit
val remove_child : t -> node -> node -> unit
val attach_attribute : t -> node -> node -> unit

val detach_attribute : t -> node -> node -> unit
(** Remove an attribute node from its owner element. *)

val set_nilled : t -> node -> bool -> unit

val set_content : t -> node -> string -> unit
(** Replace the own content of a text or attribute node (a state
    transition of the algebra; element/document nodes derive their
    string value and reject this). *)

val set_typed_value : t -> node -> Xsm_datatypes.Value.t list -> unit
val set_type_name : t -> node -> Xsm_xml.Name.t option -> unit

(** {1 Accessors (§5)} *)

val kind : t -> node -> Kind.t
val node_kind : t -> node -> string
val node_name : t -> node -> Xsm_xml.Name.t option
val parent : t -> node -> node option
val children : t -> node -> node list
val attributes : t -> node -> node list
val base_uri : t -> node -> string option
val nilled : t -> node -> bool option

val type_name : t -> node -> Xsm_xml.Name.t option
(** The [type] accessor: the QName of the node's type annotation.
    Untyped elements carry [xs:anyType]; text nodes carry
    [xdt:untypedAtomic]; document nodes have no type. *)

val string_value : t -> node -> string
(** The [string-value] accessor, computed per §6.2 item 1 and the
    XDM rules: text and attribute nodes yield their own content;
    element and document nodes concatenate descendant text. *)

val typed_value : t -> node -> Xsm_datatypes.Value.t list
(** The [typed-value] accessor.  When a typed value was recorded by
    validation it is returned; otherwise the string value wrapped as
    [xdt:untypedAtomic]. *)

(** {1 Node identity and traversal} *)

val equal_node : node -> node -> bool
val compare_node : node -> node -> int
(** An arbitrary total order on identifiers (creation order), NOT
    document order — see {!Order} for document order. *)

val node_id : node -> int
(** The raw identifier, for debugging and hashing. *)

val root : t -> node -> node
(** Follow [parent] to the top. *)

val descendants_or_self : t -> node -> node list
(** Pre-order: the node, then for elements the attributes, then the
    children subtrees — exactly the order of §7. *)

val subtree_size : t -> node -> int

val pp_node : t -> Format.formatter -> node -> unit
