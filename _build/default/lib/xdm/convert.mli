(** Loading syntactic XML into the data model and serializing back.

    [load] produces an untyped tree: every element is annotated
    [xs:anyType], every attribute and text node [xdt:untypedAtomic].
    Typed loading — the function [f] of the §8 theorem — is performed
    by the validator in [Xsm_schema], which re-annotates the nodes it
    checks.

    Comments and processing instructions are dropped: the paper's
    model covers only the document, element, attribute and text
    information items (§1: "we consider only the most important
    document components"). *)

val load : Store.t -> Xsm_xml.Tree.t -> Store.node
(** Build the node tree for a document; returns the document node.
    Adjacent text/CDATA runs become a single text node; empty text
    runs produce no node. *)

val load_element : Store.t -> Xsm_xml.Tree.element -> Store.node
(** Load a bare element (no document node on top). *)

val to_document : Store.t -> Store.node -> Xsm_xml.Tree.t
(** Serialize the tree rooted at a document or element node back to a
    syntactic document — the function [g] of the theorem. *)

val to_element : Store.t -> Store.node -> Xsm_xml.Tree.element
(** Serialize an element node. [Invalid_argument] on other kinds. *)
