module Tree = Xsm_xml.Tree

(* Merge adjacent text/CDATA children into single non-empty strings,
   dropping comments and PIs — the §8 normalization baked into f. *)
let text_runs children =
  let flush buf acc =
    if Buffer.length buf = 0 then acc
    else begin
      let s = Buffer.contents buf in
      Buffer.clear buf;
      `Text s :: acc
    end
  in
  let buf = Buffer.create 16 in
  let acc =
    List.fold_left
      (fun acc child ->
        match child with
        | Tree.Text s | Tree.Cdata s ->
          Buffer.add_string buf s;
          acc
        | Tree.Element e -> `Elem e :: flush buf acc
        | Tree.Comment _ | Tree.Pi _ -> acc)
      [] children
  in
  List.rev (flush buf acc)

let rec load_element_under store ?base_uri (e : Tree.element) =
  let node = Store.new_element ?base_uri store e.name in
  List.iter
    (fun (a : Tree.attribute) ->
      let attr = Store.new_attribute store a.name a.value in
      Store.attach_attribute store node attr)
    e.attributes;
  let children =
    List.map
      (function
        | `Text s -> Store.new_text store s
        | `Elem child -> load_element_under store child)
      (text_runs e.children)
  in
  Store.append_children store node children;
  node

let load_element store e = load_element_under store e

let load store (doc : Tree.t) =
  let dnode = Store.new_document ?base_uri:doc.base_uri store in
  let root = load_element_under store ?base_uri:doc.base_uri doc.root in
  Store.append_child store dnode root;
  root |> ignore;
  dnode

let rec to_element store node =
  match Store.kind store node with
  | Store.Kind.Element ->
    let name =
      match Store.node_name store node with
      | Some n -> n
      | None -> invalid_arg "to_element: element without a name"
    in
    let attributes =
      List.map
        (fun a ->
          match Store.node_name store a with
          | Some n -> { Tree.name = n; value = Store.string_value store a }
          | None -> invalid_arg "to_element: attribute without a name")
        (Store.attributes store node)
    in
    let children =
      List.map
        (fun c ->
          match Store.kind store c with
          | Store.Kind.Text -> Tree.Text (Store.string_value store c)
          | Store.Kind.Element -> Tree.Element (to_element store c)
          | Store.Kind.Document | Store.Kind.Attribute ->
            invalid_arg "to_element: impossible child kind")
        (Store.children store node)
    in
    { Tree.name; attributes; children }
  | Store.Kind.Document | Store.Kind.Attribute | Store.Kind.Text ->
    invalid_arg "to_element: not an element node"

let to_document store node =
  match Store.kind store node with
  | Store.Kind.Document -> (
    match Store.children store node with
    | [ root ] ->
      Tree.document ?base_uri:(Store.base_uri store node) (to_element store root)
    | [] -> invalid_arg "to_document: document node has no element child"
    | _ -> invalid_arg "to_document: document node has several children")
  | Store.Kind.Element -> Tree.document ?base_uri:(Store.base_uri store node) (to_element store node)
  | Store.Kind.Attribute | Store.Kind.Text ->
    invalid_arg "to_document: not a document or element node"
