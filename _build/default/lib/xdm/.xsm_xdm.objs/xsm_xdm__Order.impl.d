lib/xdm/order.ml: Stdlib Store
