lib/xdm/axis.ml: List Store
