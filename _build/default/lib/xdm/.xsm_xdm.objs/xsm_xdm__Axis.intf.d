lib/xdm/axis.mli: Store
