lib/xdm/store.ml: Array Buffer Format List Option Xsm_datatypes Xsm_xml
