lib/xdm/convert.mli: Store Xsm_xml
