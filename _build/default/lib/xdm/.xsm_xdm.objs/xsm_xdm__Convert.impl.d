lib/xdm/convert.ml: Buffer List Store Xsm_xml
