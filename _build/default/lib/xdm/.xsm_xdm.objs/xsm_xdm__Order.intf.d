lib/xdm/order.mli: Store
