lib/xdm/store.mli: Format Xsm_datatypes Xsm_xml
