type t =
  | Self
  | Child
  | Descendant
  | Descendant_or_self
  | Parent
  | Ancestor
  | Ancestor_or_self
  | Following_sibling
  | Preceding_sibling
  | Following
  | Preceding
  | Attribute

let to_string = function
  | Self -> "self"
  | Child -> "child"
  | Descendant -> "descendant"
  | Descendant_or_self -> "descendant-or-self"
  | Parent -> "parent"
  | Ancestor -> "ancestor"
  | Ancestor_or_self -> "ancestor-or-self"
  | Following_sibling -> "following-sibling"
  | Preceding_sibling -> "preceding-sibling"
  | Following -> "following"
  | Preceding -> "preceding"
  | Attribute -> "attribute"

let all =
  [ Self; Child; Descendant; Descendant_or_self; Parent; Ancestor; Ancestor_or_self;
    Following_sibling; Preceding_sibling; Following; Preceding; Attribute ]

let of_string s = List.find_opt (fun a -> to_string a = s) all

(* children subtrees only — attributes are not on the descendant axis *)
let rec descendants store n acc =
  List.fold_left (fun acc c -> descendants store c (c :: acc)) acc (Store.children store n)

let descendants_in_order store n = List.rev (descendants store n [])

let ancestors store n =
  let rec go acc n =
    match Store.parent store n with None -> acc | Some p -> go (p :: acc) p
  in
  List.rev (go [] n) (* nearest ancestor first: reverse document order *)

let siblings_split store n =
  match Store.parent store n with
  | None -> ([], [])
  | Some p ->
    let rec split before = function
      | [] -> (before, [])
      | c :: rest ->
        if Store.equal_node c n then (before, rest) else split (c :: before) rest
    in
    (* attributes are not siblings of anything *)
    if List.exists (Store.equal_node n) (Store.attributes store p) then ([], [])
    else split [] (Store.children store p)

let apply store axis n =
  match axis with
  | Self -> [ n ]
  | Child -> Store.children store n
  | Attribute -> Store.attributes store n
  | Parent -> ( match Store.parent store n with None -> [] | Some p -> [ p ])
  | Descendant -> descendants_in_order store n
  | Descendant_or_self -> n :: descendants_in_order store n
  | Ancestor -> ancestors store n
  | Ancestor_or_self -> n :: ancestors store n
  | Following_sibling -> snd (siblings_split store n)
  | Preceding_sibling -> fst (siblings_split store n) (* already reversed *)
  | Following ->
    (* nodes after the end of this subtree, in document order: for each
       ancestor-or-self, the following siblings' subtrees *)
    List.concat_map
      (fun a ->
        List.concat_map
          (fun s -> s :: descendants_in_order store s)
          (snd (siblings_split store a)))
      (n :: ancestors store n)
  | Preceding ->
    (* nodes wholly before this one, excluding ancestors, in reverse
       document order *)
    List.concat_map
      (fun a ->
        List.concat_map
          (fun s -> List.rev (s :: descendants_in_order store s))
          (fst (siblings_split store a)))
      (n :: ancestors store n)
