(** Document order (§7).

    The relation [<<] is the total order on the nodes of one tree
    defined by: the document node precedes its element child; an
    element precedes its attributes; attributes precede the element's
    children; the subtrees of consecutive children are fully ordered
    ([tree(end_j) << tree(end_{j+1})]). *)

val compare : Store.t -> Store.node -> Store.node -> int
(** [compare store a b] is negative when [a << b].  Both nodes must
    belong to the same tree; [Invalid_argument] otherwise. *)

val precedes : Store.t -> Store.node -> Store.node -> bool
(** [precedes store a b] is [a << b] (strict). *)

val nodes_in_order : Store.t -> Store.node -> Store.node list
(** All nodes of the tree rooted at the given node, sorted by [<<].
    Equal to {!Store.descendants_or_self} — exposed separately so the
    equivalence can be tested. *)

val is_ancestor : Store.t -> Store.node -> Store.node -> bool
(** [is_ancestor store a d] — strict ancestorship via [parent]. *)

val index_in_parent : Store.t -> Store.node -> int option
(** Position of a node among its parent's children (0-based); [None]
    for attributes and roots. *)
