(** XPath axes, defined purely through the accessors of §5 — the
    paper's point that the accessors "provide primitive facilities for
    a query language". *)

type t =
  | Self
  | Child
  | Descendant
  | Descendant_or_self
  | Parent
  | Ancestor
  | Ancestor_or_self
  | Following_sibling
  | Preceding_sibling
  | Following
  | Preceding
  | Attribute

val of_string : string -> t option
val to_string : t -> string

val apply : Store.t -> t -> Store.node -> Store.node list
(** Nodes on the axis from a context node, in axis order: forward
    axes in document order, reverse axes ([Ancestor*], [Preceding*])
    in reverse document order, as XPath prescribes. *)
