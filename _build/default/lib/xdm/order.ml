(* A node's position under its parent: attributes sort before element
   and text children, both by their sequence index.  A root has the
   empty path; any other node's path is its parent's path extended
   with its rank.  Lexicographic path comparison is exactly << because
   a prefix means ancestorship and §7 places an ancestor before its
   subtree. *)

let rank store n =
  match Store.parent store n with
  | None -> None
  | Some p ->
    let find xs =
      let rec go i = function
        | [] -> None
        | x :: rest -> if Store.equal_node x n then Some i else go (i + 1) rest
      in
      go 0 xs
    in
    (match find (Store.attributes store p) with
    | Some i -> Some (p, (0, i))
    | None -> (
      match find (Store.children store p) with
      | Some i -> Some (p, (1, i))
      | None -> invalid_arg "Order: node not reachable from its parent"))

let path store n =
  let rec go acc n =
    match rank store n with None -> acc | Some (p, r) -> go (r :: acc) p
  in
  go [] n

let compare store a b =
  if Store.equal_node a b then 0
  else begin
    let ra = Store.root store a and rb = Store.root store b in
    if not (Store.equal_node ra rb) then
      invalid_arg "Order.compare: nodes belong to different trees";
    Stdlib.compare (path store a) (path store b)
  end

let precedes store a b = compare store a b < 0
let nodes_in_order store n = Store.descendants_or_self store n

let is_ancestor store a d =
  let rec up n =
    match Store.parent store n with
    | None -> false
    | Some p -> Store.equal_node p a || up p
  in
  up d

let index_in_parent store n =
  match rank store n with Some (_, (1, i)) -> Some i | Some (_, _) | None -> None
