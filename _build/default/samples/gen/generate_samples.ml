(* Regenerates the sample schema/document files shipped in samples/.
   Run: dune exec samples/gen/generate_samples.exe -- samples/ *)

let write dir name content =
  let path = Filename.concat dir name in
  let oc = open_out path in
  output_string oc content;
  close_out oc;
  Printf.printf "wrote %s\n" path

let () =
  let dir = if Array.length Sys.argv > 1 then Sys.argv.(1) else "samples" in
  write dir "bookstore.xsd" (Xsm_xsd.Writer.to_string Xsm_schema.Samples.example7_schema);
  write dir "library.xsd" (Xsm_xsd.Writer.to_string Xsm_schema.Samples.library_schema);
  write dir "bookstore.xml"
    (Xsm_xml.Printer.to_pretty_string (Xsm_schema.Samples.bookstore_document ~books:4 ()));
  write dir "library.xml"
    (Xsm_xml.Printer.to_pretty_string Xsm_schema.Samples.example8_document)
