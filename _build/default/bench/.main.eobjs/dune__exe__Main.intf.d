bench/main.mli:
