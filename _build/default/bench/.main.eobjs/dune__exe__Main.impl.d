bench/main.ml: Analyze Array Bechamel Benchmark Lazy List Measure Option Printf Report Staged String Sys Test Time Toolkit Xsm_datatypes Xsm_numbering Xsm_schema Xsm_storage Xsm_xdm Xsm_xml Xsm_xpath
