bench/report.ml: Array List Option Printf Result Sys Xsm_datatypes Xsm_numbering Xsm_schema Xsm_storage Xsm_xdm Xsm_xml Xsm_xpath
