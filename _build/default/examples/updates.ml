(* Schema-safe updates: the data-manipulation direction the paper's
   conclusion (§11) announces.  Every operation is applied to the
   state algebra and re-validated; an update that would leave the
   database outside the set of S-trees is rolled back.

   Run with: dune exec examples/updates.exe *)

module Store = Xsm_xdm.Store
module Tree = Xsm_xml.Tree
module Name = Xsm_xml.Name
open Xsm_schema

let show_outcome label = function
  | Ok () -> Printf.printf "%-46s applied\n" label
  | Error (e :: _) -> Printf.printf "%-46s REJECTED: %s\n" label e
  | Error [] -> Printf.printf "%-46s REJECTED\n" label

let () =
  let schema = Samples.example7_schema in
  let doc = Samples.bookstore_document ~books:2 () in
  let store, dnode =
    match Validator.validate_document doc schema with
    | Ok r -> r
    | Error _ -> failwith "fixture"
  in
  let bookstore = List.hd (Store.children store dnode) in

  Printf.printf "starting with %d books\n\n" (List.length (Store.children store bookstore));

  (* 1. a legal insertion: a complete Book *)
  let new_book =
    Tree.elem "Book"
      ~children:
        (List.map
           (fun (tag, v) -> Tree.element (Tree.elem tag ~children:[ Tree.text v ]))
           [
             ("Title", "The Art of Computer Programming");
             ("Author", "Knuth");
             ("Date", "1968");
             ("ISBN", "0-201-03801-3");
             ("Publisher", "Addison-Wesley");
           ])
  in
  show_outcome "insert a complete Book"
    (Update.apply_validated store dnode schema
       (Update.Insert_element { parent = bookstore; before = None; tree = new_book }));

  (* 2. an illegal insertion: rolled back *)
  show_outcome "insert a stray <Pamphlet>"
    (Update.apply_validated store dnode schema
       (Update.Insert_element
          {
            parent = bookstore;
            before = None;
            tree = Tree.elem "Pamphlet" ~children:[ Tree.text "free!" ];
          }));

  (* 3. deleting a mandatory field: rolled back *)
  let first_book = List.hd (Store.children store bookstore) in
  let isbn = List.nth (Store.children store first_book) 3 in
  show_outcome "delete a Book's ISBN"
    (Update.apply_validated store dnode schema (Update.Delete isbn));

  (* 4. deleting a whole Book: fine (Book is 1..unbounded, 3 remain) *)
  show_outcome "delete an entire Book"
    (Update.apply_validated store dnode schema (Update.Delete first_book));

  (* 5. editing a text leaf *)
  let book = List.hd (Store.children store bookstore) in
  let title_text = List.hd (Store.children store (List.hd (Store.children store book))) in
  show_outcome "retitle a Book"
    (Update.apply_validated store dnode schema
       (Update.Replace_content { node = title_text; value = "Renamed" }));

  Printf.printf "\nending with %d books, first title %S\n"
    (List.length (Store.children store bookstore))
    (Store.string_value store (List.hd (Store.children store book)));

  (* the database is still an S-tree and still round-trips *)
  (match Validator.validate store dnode schema with
  | Ok () -> print_endline "final state is an S-tree"
  | Error _ -> print_endline "BUG: final state invalid");
  let back = Xsm_xdm.Convert.to_document store dnode in
  match Validator.validate_document back schema with
  | Ok _ -> print_endline "serialized state re-validates (g then f)"
  | Error _ -> print_endline "BUG: serialization broke validity"
