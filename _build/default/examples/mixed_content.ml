(* Mixed content and nil values: the Example 5 and Example 6 types.

   Demonstrates the §6.2 rules for mixed complex content (items
   5.4.2.2: text nodes interleaved, never adjacent), simple content
   with attributes (item 5.2), and nilled elements (item 6).

   Run with: dune exec examples/mixed_content.exe *)

module Tree = Xsm_xml.Tree
module Store = Xsm_xdm.Store

let check label result =
  Printf.printf "%-52s %s\n" label
    (match result with
    | Ok _ -> "valid"
    | Error (e :: _) -> "rejected: " ^ Xsm_schema.Validator.error_to_string e
    | Error [] -> "rejected")

let () =
  (* Example 6: the mixed bookstore type *)
  let schema =
    Xsm_schema.Ast.schema
      (Xsm_schema.Ast.element "BookStore" (Xsm_schema.Ast.Anonymous Xsm_schema.Samples.example6_type))
  in
  (match Xsm_schema.Schema_check.check schema with
  | Ok () -> print_endline "mixed bookstore schema: well-formed"
  | Error es ->
    List.iter (fun e -> Format.printf "%a@." Xsm_schema.Schema_check.pp_error e) es);

  let book i =
    Tree.element
      (Tree.elem "Book"
         ~children:
           (List.map
              (fun f -> Tree.element (Tree.elem f ~children:[ Tree.text (f ^ string_of_int i) ]))
              [ "Title"; "Author"; "Date"; "ISBN"; "Publisher" ]))
  in
  let attrs = [ Tree.attr "InStock" "true"; Tree.attr "Reviewer" "me" ] in

  (* text interleaved between Book elements: allowed by mixed=true *)
  let mixed_doc =
    Tree.document
      (Tree.elem "BookStore" ~attrs
         ~children:[ Tree.text "new arrivals: "; book 1; Tree.text " and a classic "; book 2 ])
  in
  check "mixed: text between Book elements" (Xsm_schema.Validator.validate_document mixed_doc schema);

  (* the attributes of Example 6 are mandatory in the model (§5.3.1) *)
  let missing_attr =
    Tree.document (Tree.elem "BookStore" ~attrs:[ Tree.attr "InStock" "true" ] ~children:[ book 1 ])
  in
  check "mixed: missing declared attribute" (Xsm_schema.Validator.validate_document missing_attr schema);

  (* children of Book may NOT be interleaved with text (not mixed) *)
  let bad_book =
    Tree.document
      (Tree.elem "BookStore" ~attrs
         ~children:
           [
             Tree.element
               (Tree.elem "Book"
                  ~children:
                    [
                      Tree.text "oops";
                      Tree.element (Tree.elem "Title" ~children:[ Tree.text "T" ]);
                      Tree.element (Tree.elem "Author" ~children:[ Tree.text "A" ]);
                      Tree.element (Tree.elem "Date" ~children:[ Tree.text "D" ]);
                      Tree.element (Tree.elem "ISBN" ~children:[ Tree.text "I" ]);
                      Tree.element (Tree.elem "Publisher" ~children:[ Tree.text "P" ]);
                    ]);
           ])
  in
  check "non-mixed Book with stray text" (Xsm_schema.Validator.validate_document bad_book schema);

  (* Example 5: simple content with attribute *)
  print_endline "";
  let price_schema =
    Xsm_schema.Ast.schema
      (Xsm_schema.Ast.element "Price" (Xsm_schema.Ast.Anonymous Xsm_schema.Samples.example5_type))
  in
  let price v =
    Tree.document (Tree.elem "Price" ~attrs:[ Tree.attr "currency" "EUR" ] ~children:[ Tree.text v ])
  in
  check "simple content: decimal with attribute" (Xsm_schema.Validator.validate_document (price "129.95") price_schema);
  check "simple content: non-decimal text" (Xsm_schema.Validator.validate_document (price "cheap") price_schema);

  (* nillable elements (Example 1's Comment) *)
  print_endline "";
  let nil_schema =
    Xsm_schema.Ast.schema
      (Xsm_schema.Ast.element ~nillable:true "Comment" (Xsm_schema.Ast.named_type "xs:string"))
  in
  let nil_doc =
    Tree.document (Tree.elem "Comment" ~attrs:[ Tree.attr ~prefix:"xsi" "nil" "true" ])
  in
  check "nillable element with xsi:nil" (Xsm_schema.Validator.validate_document nil_doc nil_schema);
  (match Xsm_schema.Validator.validate_document nil_doc nil_schema with
  | Ok (store, dnode) ->
    let root = List.hd (Store.children store dnode) in
    Printf.printf "  nilled accessor: %s\n"
      (match Store.nilled store root with Some b -> string_of_bool b | None -> "()")
  | Error _ -> ());

  (* xsi:nil on a non-nillable declaration is an error *)
  let strict_schema =
    Xsm_schema.Ast.schema
      (Xsm_schema.Ast.element "Comment" (Xsm_schema.Ast.named_type "xs:string"))
  in
  check "xsi:nil without NillIndicator" (Xsm_schema.Validator.validate_document nil_doc strict_schema);

  (* nilled element must be empty *)
  let nil_with_content =
    Tree.document
      (Tree.elem "Comment" ~attrs:[ Tree.attr ~prefix:"xsi" "nil" "true" ]
         ~children:[ Tree.text "but not empty" ])
  in
  check "nilled element with content" (Xsm_schema.Validator.validate_document nil_with_content nil_schema)
