(* The paper's running example (Example 7) end to end: the BookStore
   schema in abstract syntax and in XSD concrete syntax, instance
   generation, validation, document order, and queries.

   Run with: dune exec examples/bookstore.exe *)

module Store = Xsm_xdm.Store
module E = Xsm_xpath.Eval.Over_store

let () =
  let schema = Xsm_schema.Samples.example7_schema in

  print_endline "=== The Example 7 schema, written back as XSD ===";
  print_string (Xsm_xsd.Writer.to_string schema);

  (* generate a valid instance *)
  let doc = Xsm_schema.Samples.bookstore_document ~books:5 () in
  print_endline "=== A generated S-document ===";
  print_string (Xsm_xml.Printer.element_to_pretty_string doc.Xsm_xml.Tree.root);

  (* f: document -> S-tree *)
  let store, dnode =
    match Xsm_schema.Validator.validate_document doc schema with
    | Ok r -> r
    | Error es ->
      List.iter (fun e -> print_endline (Xsm_schema.Validator.error_to_string e)) es;
      exit 1
  in
  Printf.printf "\nvalid: store has %d nodes (%d elements, %d texts)\n"
    (Store.node_count store)
    (Store.count_kind store Store.Kind.Element)
    (Store.count_kind store Store.Kind.Text);

  (* document order (§7): the first few nodes *)
  print_endline "\n=== Document order (first 8 nodes) ===";
  let ordered = Xsm_xdm.Order.nodes_in_order store dnode in
  List.iteri
    (fun i n -> if i < 8 then Format.printf "%d: %a@." i (Store.pp_node store) n)
    ordered;

  (* queries *)
  print_endline "\n=== Queries ===";
  let show q =
    match E.eval_string store dnode q with
    | Ok nodes ->
      Printf.printf "%-40s -> %s\n" q
        (String.concat " | " (E.strings store nodes))
    | Error e -> Printf.printf "%-40s -> error: %s\n" q e
  in
  show "/BookStore/Book[1]/Title";
  show "/BookStore/Book[last()]/ISBN";
  show "//Book[Author=\"Author 2\"]/Title";
  (match E.count store dnode "//Author" with
  | Ok n -> Printf.printf "count(//Author) = %d\n" n
  | Error e -> print_endline e);

  (* an invalid document is rejected with a located error *)
  print_endline "\n=== Rejecting an invalid document ===";
  (match
     Xsm_schema.Validator.validate_document
       (Xsm_schema.Samples.bookstore_invalid_document ())
       schema
   with
  | Ok _ -> print_endline "unexpectedly accepted!"
  | Error es ->
    List.iter (fun e -> print_endline (Xsm_schema.Validator.error_to_string e)) es);

  (* the same questions in FLWOR form *)
  print_endline "\n=== FLWOR queries ===";
  List.iter
    (fun q ->
      match Xsm_xpath.Flwor.Over_store.eval_string store dnode q with
      | Ok items ->
        Printf.printf "%-64s -> %s\n" q
          (String.concat " | " (Xsm_xpath.Flwor.Over_store.strings store items))
      | Error e -> Printf.printf "%-64s -> error: %s\n" q e)
    [
      {|for $b in /BookStore/Book where $b/Author = "Author 2" return $b/Title|};
      {|for $b in /BookStore/Book order by $b/Date return string($b/Date)|};
      {|let $all := /BookStore/Book return count($all)|};
    ];

  (* the theorem over many random instances *)
  let rng = Xsm_schema.Generator.rng 7 in
  let all =
    List.init 100 (fun _ ->
        let d = Xsm_schema.Generator.instance rng schema in
        Xsm_schema.Roundtrip.holds_for d schema = Ok true)
  in
  Printf.printf "\ng(f(X)) =_c X on 100 random instances: %s\n"
    (if List.for_all Fun.id all then "all hold" else "FAILED")
