(* Quickstart: parse a schema written in XSD, parse a document,
   validate it (building the typed data-model tree), and walk the
   accessors.

   Run with: dune exec examples/quickstart.exe *)

let schema_text =
  {|<?xml version="1.0"?>
<xsd:schema xmlns:xsd="http://www.w3.org/2001/XMLSchema">
  <xsd:element name="note">
    <xsd:complexType>
      <xsd:sequence>
        <xsd:element name="to" type="xsd:string"/>
        <xsd:element name="from" type="xsd:string"/>
        <xsd:element name="heading" type="xsd:string" minOccurs="0"/>
        <xsd:element name="body" type="xsd:string"/>
        <xsd:element name="priority" type="xsd:positiveInteger" minOccurs="0"/>
      </xsd:sequence>
      <xsd:attribute name="lang" type="xsd:language"/>
    </xsd:complexType>
  </xsd:element>
</xsd:schema>|}

let document_text =
  {|<note lang="en">
  <to>Tove</to>
  <from>Jani</from>
  <body>Don't forget me this weekend!</body>
  <priority>2</priority>
</note>|}

let () =
  (* 1. read the schema *)
  let schema =
    match Xsm_xsd.Reader.schema_of_string schema_text with
    | Ok s -> s
    | Error e -> failwith (Xsm_xsd.Reader.error_to_string e)
  in
  (match Xsm_schema.Schema_check.check schema with
  | Ok () -> print_endline "schema: well-formed"
  | Error es ->
    List.iter (fun e -> Format.printf "schema error: %a@." Xsm_schema.Schema_check.pp_error e) es);

  (* 2. parse the document *)
  let doc =
    match Xsm_xml.Parser.parse_document document_text with
    | Ok d -> d
    | Error e -> failwith (Xsm_xml.Parser.error_to_string e)
  in

  (* 3. validate: this is the paper's function f — it builds the
     S-tree in a state algebra and annotates types *)
  let store, dnode =
    match Xsm_schema.Validator.validate_document doc schema with
    | Ok (store, dnode) -> (store, dnode)
    | Error es ->
      List.iter (fun e -> print_endline (Xsm_schema.Validator.error_to_string e)) es;
      exit 1
  in
  Printf.printf "document: valid, %d nodes in the store\n" (Xsm_xdm.Store.node_count store);

  (* 4. walk accessors *)
  let root = List.hd (Xsm_xdm.Store.children store dnode) in
  Printf.printf "root: node-kind=%s node-name=%s type=%s\n"
    (Xsm_xdm.Store.node_kind store root)
    (match Xsm_xdm.Store.node_name store root with
    | Some n -> Xsm_xml.Name.to_string n
    | None -> "()")
    (match Xsm_xdm.Store.type_name store root with
    | Some n -> Xsm_xml.Name.to_string n
    | None -> "()");
  List.iter
    (fun attr ->
      Printf.printf "attribute %s = %S (typed as %s)\n"
        (match Xsm_xdm.Store.node_name store attr with
        | Some n -> Xsm_xml.Name.to_string n
        | None -> "?")
        (Xsm_xdm.Store.string_value store attr)
        (String.concat ", "
           (List.map Xsm_datatypes.Value.kind_name (Xsm_xdm.Store.typed_value store attr))))
    (Xsm_xdm.Store.attributes store root);
  List.iter
    (fun child ->
      match Xsm_xdm.Store.node_name store child with
      | Some n ->
        Printf.printf "child %-8s string-value=%S\n" (Xsm_xml.Name.to_string n)
          (Xsm_xdm.Store.string_value store child)
      | None -> ())
    (Xsm_xdm.Store.children store root);

  (* 5. a query through the accessors *)
  (match Xsm_xpath.Eval.Over_store.eval_string store dnode "/note/priority" with
  | Ok [ p ] ->
    Printf.printf "priority (typed): %s\n"
      (String.concat ", "
         (List.map Xsm_datatypes.Value.canonical_string (Xsm_xdm.Store.typed_value store p)))
  | Ok _ -> print_endline "priority: not found"
  | Error e -> print_endline e);

  (* 6. the theorem: g (f X) =_c X *)
  match Xsm_schema.Roundtrip.holds_for doc schema with
  | Ok true -> print_endline "g(f(X)) =_c X holds"
  | Ok false -> print_endline "round-trip failed!"
  | Error _ -> print_endline "document was not an S-document"
