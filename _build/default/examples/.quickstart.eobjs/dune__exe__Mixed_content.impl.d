examples/mixed_content.ml: Format List Printf Xsm_schema Xsm_xdm Xsm_xml
