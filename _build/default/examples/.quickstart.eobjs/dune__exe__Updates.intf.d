examples/updates.mli:
