examples/quickstart.mli:
