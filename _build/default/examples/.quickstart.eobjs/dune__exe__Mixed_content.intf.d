examples/mixed_content.mli:
