examples/updates.ml: List Printf Samples Update Validator Xsm_schema Xsm_xdm Xsm_xml
