examples/bookstore.mli:
