examples/quickstart.ml: Format List Printf String Xsm_datatypes Xsm_schema Xsm_xdm Xsm_xml Xsm_xpath Xsm_xsd
