examples/library_storage.mli:
