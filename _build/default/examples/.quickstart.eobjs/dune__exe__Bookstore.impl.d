examples/bookstore.ml: Format Fun List Printf String Xsm_schema Xsm_xdm Xsm_xml Xsm_xpath Xsm_xsd
