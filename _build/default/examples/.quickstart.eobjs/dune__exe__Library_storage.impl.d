examples/library_storage.ml: Format List Printf String Xsm_numbering Xsm_schema Xsm_storage Xsm_xdm Xsm_xml Xsm_xpath
