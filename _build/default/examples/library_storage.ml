(* The §9 storage walk-through on the paper's Example 8 library
   document: descriptive schema extraction (the DataGuide of the
   figure), block layout, numbering labels, structural predicates and
   update stability.

   Run with: dune exec examples/library_storage.exe *)

module Store = Xsm_xdm.Store
module B = Xsm_storage.Block_storage
module DS = Xsm_storage.Descriptive_schema
module Label = Xsm_numbering.Sedna_label

let () =
  let doc = Xsm_schema.Samples.example8_document in
  let store = Store.create () in
  let dnode = Xsm_xdm.Convert.load store doc in

  (* the document itself *)
  print_endline "=== Example 8 document ===";
  print_string (Xsm_xml.Printer.element_to_pretty_string doc.Xsm_xml.Tree.root);

  (* §9.1: descriptive schema *)
  let bs = B.of_store ~block_capacity:4 store dnode in
  let ds = B.schema bs in
  print_endline "\n=== Descriptive schema (the paper's figure) ===";
  Format.printf "%a" DS.pp ds;
  Printf.printf "document nodes: %d, schema nodes: %d\n"
    (Store.node_count store) (DS.node_count ds);

  print_endline "\n=== Schema paths ===";
  List.iter print_endline (DS.paths ds);

  (* §9.2: block layout *)
  Printf.printf "\nblocks: %d (capacity 4 each), descriptors: %d\n"
    (B.block_count bs) (B.descriptor_count bs);

  (* first-child-by-schema: the library element holds two pointers *)
  let rootd = B.root bs in
  let library = List.hd (B.children bs rootd) in
  let lib_snode = B.snode library in
  Printf.printf "\nlibrary schema node has %d children (book, paper)\n"
    (List.length (DS.children ds lib_snode));
  List.iter
    (fun child_snode ->
      match B.first_child_by_schema library child_snode with
      | Some d ->
        Printf.printf "first %s child: string-value %S\n"
          (match DS.name child_snode with Some n -> Xsm_xml.Name.to_string n | None -> "#text")
          (String.sub (B.string_value bs d) 0 (min 30 (String.length (B.string_value bs d))))
      | None -> ())
    (DS.children ds lib_snode);

  (* §9.3: numbering labels and the three predicates *)
  print_endline "\n=== Numbering labels ===";
  let books = B.children bs library in
  List.iteri
    (fun i b ->
      Format.printf "child %d (%s): nid = %a@." i (B.node_kind b) Label.pp (B.nid b))
    books;
  (match books with
  | b1 :: b2 :: _ ->
    Printf.printf "relation(nid b1, nid b2) decides order without the tree: %s\n"
      (match Label.relation (B.nid b1) (B.nid b2) with
      | Label.Before -> "Before"
      | _ -> "?");
    Printf.printf "relation(nid library, nid b1): %s\n"
      (match Label.relation (B.nid library) (B.nid b1) with
      | Label.Parent -> "Parent"
      | Label.Ancestor -> "Ancestor"
      | _ -> "?")
  | _ -> ());

  (* Proposition 1: inserting does not disturb existing labels *)
  print_endline "\n=== Update stability (Proposition 1) ===";
  let before = List.map (fun d -> Label.to_raw (B.nid d)) books in
  let anchor = List.hd books in
  let inserted, moved = B.insert_element bs ~parent:library ~after:(Some anchor)
      (Xsm_xml.Name.local "pamphlet") in
  Format.printf "inserted pamphlet with nid %a (%d descriptors moved by splits)@."
    Label.pp (B.nid inserted) moved;
  let after = List.map (fun d -> Label.to_raw (B.nid d)) books in
  Printf.printf "existing labels unchanged: %b\n" (before = after);
  (match B.check_integrity bs with
  | Ok () -> print_endline "storage invariants hold after the update"
  | Error e -> Printf.printf "INTEGRITY VIOLATION: %s\n" e);

  (* schema-driven queries: scan block lists, no tree traversal *)
  print_endline "\n=== Schema-driven queries (Sedna access path) ===";
  List.iter
    (fun q ->
      match Xsm_xpath.Schema_driven.eval_string bs q with
      | Ok descs ->
        Printf.printf "%-24s -> %d nodes: %s\n" q (List.length descs)
          (String.concat " | "
             (List.filteri (fun i _ -> i < 3) (List.map (B.string_value bs) descs)))
      | Error e -> Printf.printf "%-24s -> %s\n" q e)
    [ "/library/book/title"; "//author"; "/library/paper/title"; "//year" ]
