(* The session daemon: frame codec, protocol codec, epoch latch,
   domain pool, group commit, and an in-process end-to-end server with
   concurrent sessions checking snapshot isolation — a reader's
   (epoch, answer) pairs must be a function: one epoch, one state. *)

module Json = Xsm_obs.Json
module Frame = Xsm_server.Frame
module P = Xsm_server.Protocol
module Epoch = Xsm_server.Epoch
module Pool = Xsm_server.Pool
module Commit = Xsm_server.Commit
module Server = Xsm_server.Server
module Client = Xsm_server.Client

let temp_name suffix =
  let f = Filename.temp_file "xsm_server_test" suffix in
  Sys.remove f;
  f

(* ---------------- frame ---------------- *)

let test_frame_roundtrip () =
  let a, b = Unix.socketpair Unix.PF_UNIX Unix.SOCK_STREAM 0 in
  let payload = Json.Obj [ ("op", Json.Str "hello"); ("n", Json.int 42) ] in
  (match Frame.send a payload with
  | Ok () -> ()
  | Error e -> Alcotest.fail e);
  (match Frame.recv b with
  | Ok (Some j) -> Alcotest.(check string) "payload" (Json.to_string payload) (Json.to_string j)
  | Ok None -> Alcotest.fail "unexpected EOF"
  | Error e -> Alcotest.fail e);
  (* several frames back to back arrive in order *)
  List.iter
    (fun i ->
      match Frame.send a (Json.int i) with Ok () -> () | Error e -> Alcotest.fail e)
    [ 1; 2; 3 ];
  List.iter
    (fun i ->
      match Frame.recv b with
      | Ok (Some j) -> Alcotest.(check string) "pipelined" (Json.to_string (Json.int i)) (Json.to_string j)
      | _ -> Alcotest.fail "pipelined frame lost")
    [ 1; 2; 3 ];
  Unix.close a;
  (match Frame.recv b with
  | Ok None -> ()
  | Ok (Some _) -> Alcotest.fail "expected clean EOF"
  | Error e -> Alcotest.fail ("expected clean EOF, got: " ^ e));
  Unix.close b

let test_frame_too_large () =
  let a, b = Unix.socketpair Unix.PF_UNIX Unix.SOCK_STREAM 0 in
  let big = Json.Str (String.make (Frame.max_frame + 1) 'x') in
  (match Frame.send a big with
  | Error e -> Alcotest.(check bool) "names the size" true (String.length e > 0)
  | Ok () -> Alcotest.fail "oversized frame must be refused");
  Unix.close a;
  Unix.close b

(* ---------------- protocol ---------------- *)

let roundtrip_request r =
  match P.request_of_json (P.request_to_json r) with
  | Ok r' -> Alcotest.(check bool) "request survives json" true (r = r')
  | Error e -> Alcotest.fail e

let roundtrip_response r =
  match P.response_of_json (P.response_to_json r) with
  | Ok r' -> Alcotest.(check bool) "response survives json" true (r = r')
  | Error e -> Alcotest.fail e

let test_protocol_roundtrip () =
  List.iter roundtrip_request
    [
      P.Hello { client = "test" };
      P.Query { id = 3; path = "//book/title"; trace = None };
      P.Query
        { id = 3; path = "//book"; trace = Some { trace_id = "cafe01"; parent_span = 7 } };
      P.Update { id = 4; command = "insert /library <x/>"; trace = None };
      P.Update
        {
          id = 4;
          command = "delete //x";
          trace = Some { trace_id = "beef"; parent_span = 1 };
        };
      P.Validate { id = 5; doc = "<a/>"; trace = None };
      P.Stats { id = 6; openmetrics = false };
      P.Stats { id = 6; openmetrics = true };
      P.Introspect { id = 9; what = P.Flight };
      P.Introspect { id = 10; what = P.Trace_events "cafe01" };
      P.Shutdown { id = 7 };
      P.Bye;
    ];
  List.iter roundtrip_response
    [
      P.Welcome { session = 1; version = P.version };
      P.Nodes { id = 3; epoch = 17; values = [ "a"; "b" ] };
      P.Applied { id = 4; epoch = 18 };
      P.Validity { id = 5; valid = false; errors = [ "boom" ] };
      P.Stats_reply { id = 6; body = Json.Obj [ ("x", Json.int 1) ] };
      P.Introspect_reply { id = 9; body = Json.Obj [ ("recent", Json.Arr []) ] };
      P.Stopping { id = 7 };
      P.Failed { id = 8; message = "no" };
    ]

let test_protocol_errors () =
  (match P.request_of_json (Json.Obj [ ("op", Json.Str "frobnicate") ]) with
  | Error e -> Alcotest.(check bool) "unknown op named" true (String.length e > 0)
  | Ok _ -> Alcotest.fail "unknown op must be refused");
  match P.request_of_json (Json.Obj [ ("op", Json.Str "query"); ("id", Json.int 1) ]) with
  | Error _ -> ()
  | Ok _ -> Alcotest.fail "missing field must be refused"

(* ---------------- epoch ---------------- *)

let test_epoch_counts_batches () =
  let e = Epoch.create () in
  Alcotest.(check int) "starts at 0" 0 (Epoch.current e);
  Epoch.read e (fun ep -> Alcotest.(check int) "read sees 0" 0 ep);
  ignore (Epoch.write e (fun () -> ()));
  Alcotest.(check int) "write bumps" 1 (Epoch.current e);
  (* a raising writer may have mutated: the epoch must still move *)
  (try Epoch.write e (fun () -> failwith "boom") with Failure _ -> ());
  Alcotest.(check int) "raising write bumps too" 2 (Epoch.current e);
  Epoch.read e (fun ep -> Alcotest.(check int) "read sees 2" 2 ep)

let test_epoch_excludes_writers () =
  let e = Epoch.create () in
  let writing = ref false in
  let violations = ref 0 in
  let stop = ref false in
  let readers =
    List.init 4 (fun _ ->
        Thread.create
          (fun () ->
            while not !stop do
              Epoch.read e (fun _ -> if !writing then incr violations);
              Thread.yield ()
            done)
          ())
  in
  for _ = 1 to 50 do
    Epoch.write e (fun () ->
        writing := true;
        Thread.yield ();
        writing := false)
  done;
  stop := true;
  List.iter Thread.join readers;
  Alcotest.(check int) "no reader overlapped a writer" 0 !violations

(* ---------------- pool ---------------- *)

let test_pool_runs_and_raises () =
  let p = Pool.create 2 in
  Alcotest.(check int) "size" 2 (Pool.size p);
  Alcotest.(check int) "result" 7 (Pool.run p (fun () -> 3 + 4));
  (match Pool.run p (fun () -> failwith "pool boom") with
  | exception Failure m -> Alcotest.(check string) "exception crosses domains" "pool boom" m
  | _ -> Alcotest.fail "expected the task's exception");
  (* many tasks from many threads all complete *)
  let total = Atomic.make 0 in
  let threads =
    List.init 8 (fun i ->
        Thread.create
          (fun () ->
            for j = 0 to 24 do
              Atomic.fetch_and_add total (Pool.run p (fun () -> i + j)) |> ignore
            done)
          ())
  in
  List.iter Thread.join threads;
  let expect = List.init 8 (fun i -> List.init 25 (fun j -> i + j)) |> List.concat |> List.fold_left ( + ) 0 in
  Alcotest.(check int) "all tasks ran" expect (Atomic.get total);
  Pool.shutdown p;
  match Pool.run p (fun () -> 0) with
  | exception Invalid_argument _ -> ()
  | _ -> Alcotest.fail "run after shutdown must be refused"

(* ---------------- commit ---------------- *)

let test_commit_per_request () =
  let fsyncs = ref 0 in
  let c =
    Commit.create ~limit:1
      ~run:(fun batch ->
        incr fsyncs;
        List.map String.uppercase_ascii batch)
      ()
  in
  Alcotest.(check string) "result" "A" (Commit.submit c "a");
  Alcotest.(check string) "result" "B" (Commit.submit c "b");
  let s = Commit.stats c in
  Alcotest.(check int) "one batch per request" 2 s.Commit.batches;
  Alcotest.(check int) "batch capped at 1" 1 s.Commit.max_batch;
  Alcotest.(check int) "one fsync per request" 2 !fsyncs

let test_commit_batches_under_load () =
  (* the leader's slow first batch lets the other submitters pile up:
     they must ride one shared later batch, not pay one run() each *)
  let c =
    Commit.create
      ~run:(fun batch ->
        Thread.delay 0.05;
        List.map (fun x -> x * 10) batch)
      ()
  in
  let results = Array.make 6 0 in
  let threads =
    List.init 6 (fun i -> Thread.create (fun () -> results.(i) <- Commit.submit c (i + 1)) ())
  in
  List.iter Thread.join threads;
  Array.iteri (fun i r -> Alcotest.(check int) "own result" ((i + 1) * 10) r) results;
  let s = Commit.stats c in
  Alcotest.(check int) "every submission counted" 6 s.Commit.submissions;
  Alcotest.(check bool) "followers shared a batch" true (s.Commit.batches < 6);
  Alcotest.(check bool) "some batch had several requests" true (s.Commit.max_batch >= 2)

let test_commit_failure_fails_batch () =
  let c = Commit.create ~run:(fun _ -> failwith "wal torn") () in
  match Commit.submit c "x" with
  | exception Failure m -> Alcotest.(check string) "submitter sees the cause" "wal torn" m
  | _ -> Alcotest.fail "expected the batch failure"

(* ---------------- server end to end ---------------- *)

let boot_library () =
  let doc =
    match Xsm_xml.Parser.parse_document "<library><book><title>One</title></book></library>" with
    | Ok d -> d
    | Error e -> Alcotest.fail (Xsm_xml.Parser.error_to_string e)
  in
  let store = Xsm_xdm.Store.create () in
  let root = Xsm_xdm.Convert.load store doc in
  (store, root)

let with_server ?(domains = 2) ?(group_commit = true) ?snapshot_path ?wal_path ?page_file
    ?(pool_capacity = 64) ?(use_index = false) ?(flight_capacity = 64) ?slow_log
    ?(slow_threshold_ms = 10.0) f =
  let store, root = boot_library () in
  let socket_path = temp_name ".sock" in
  let config =
    { Server.socket_path; snapshot_path; wal_path; domains; group_commit; use_index;
      page_file; pool_capacity; flight_capacity; slow_log; slow_threshold_ms }
  in
  let srv =
    match Server.create config ~store ~root () with
    | Ok s -> s
    | Error e -> Alcotest.fail e
  in
  let ready_m = Mutex.create () in
  let ready_c = Condition.create () in
  let ready = ref false in
  let outcome = ref (Ok ()) in
  let server_thread =
    Thread.create
      (fun () ->
        outcome :=
          Server.serve
            ~on_ready:(fun () ->
              Mutex.lock ready_m;
              ready := true;
              Condition.signal ready_c;
              Mutex.unlock ready_m)
            srv)
      ()
  in
  Mutex.lock ready_m;
  while not !ready do
    Condition.wait ready_c ready_m
  done;
  Mutex.unlock ready_m;
  Fun.protect
    ~finally:(fun () ->
      Server.request_stop srv;
      Thread.join server_thread;
      match !outcome with
      | Ok () -> ()
      | Error e -> Alcotest.fail ("server teardown: " ^ e))
    (fun () -> f socket_path srv)

let ok = function Ok v -> v | Error e -> Alcotest.fail e

let test_server_session_basics () =
  with_server (fun sock _srv ->
      let c = ok (Client.connect sock) in
      let epoch0, titles = ok (Client.query c "//title") in
      Alcotest.(check (list string)) "initial titles" [ "One" ] titles;
      Alcotest.(check int) "fresh server at epoch 0" 0 epoch0;
      let epoch1 = ok (Client.update c "insert /library <book><title>Two</title></book>") in
      Alcotest.(check bool) "update advances the epoch" true (epoch1 > epoch0);
      let _, titles = ok (Client.query c "//title") in
      Alcotest.(check (list string)) "update visible" [ "One"; "Two" ] titles;
      (* an update that fails leaves the session usable *)
      (match Client.update c "delete //nothing/here" with
      | Error _ -> ()
      | Ok _ -> Alcotest.fail "deleting a missing node must fail");
      let _, titles = ok (Client.query c "//title") in
      Alcotest.(check (list string)) "state undamaged" [ "One"; "Two" ] titles;
      (* well-formedness validation without a schema *)
      let valid, _ = ok (Client.validate c "<a><b/></a>") in
      Alcotest.(check bool) "well-formed doc accepted" true valid;
      let valid, errors = ok (Client.validate c "<a><b></a>") in
      Alcotest.(check bool) "malformed doc refused" false valid;
      Alcotest.(check bool) "with a reason" true (errors <> []);
      (match ok (Client.stats c) with
      | Json.Obj _ as body -> (
        match Json.member "server" body with
        | Some _ -> ()
        | None -> Alcotest.fail "stats body must carry server info")
      | _ -> Alcotest.fail "stats body must be an object");
      Client.close c)

let test_server_snapshot_isolation () =
  with_server ~domains:2 (fun sock _srv ->
      let writers = 4 and inserts = 12 in
      let writer_threads =
        List.init writers (fun i ->
            Thread.create
              (fun () ->
                let c = ok (Client.connect ~client:(Printf.sprintf "w%d" i) sock) in
                for _ = 1 to inserts do
                  ignore (ok (Client.update c "insert /library <x/>"))
                done;
                Client.close c)
              ())
      in
      (* concurrent readers record (epoch, visible count) pairs *)
      let observations = Queue.create () in
      let obs_m = Mutex.create () in
      let reader_threads =
        List.init 2 (fun i ->
            Thread.create
              (fun () ->
                let c = ok (Client.connect ~client:(Printf.sprintf "r%d" i) sock) in
                for _ = 1 to 30 do
                  let epoch, xs = ok (Client.query c "//x") in
                  Mutex.lock obs_m;
                  Queue.push (epoch, List.length xs) observations;
                  Mutex.unlock obs_m
                done;
                Client.close c)
              ())
      in
      List.iter Thread.join (writer_threads @ reader_threads);
      let final = ok (Client.connect sock) in
      let _, xs = ok (Client.query final "//x") in
      Alcotest.(check int) "every committed insert visible" (writers * inserts) (List.length xs);
      Client.close final;
      (* snapshot isolation: the same epoch never shows two different
         states — a reader can land before or after a batch, never
         inside one *)
      let by_epoch = Hashtbl.create 32 in
      Queue.iter
        (fun (epoch, count) ->
          match Hashtbl.find_opt by_epoch epoch with
          | None -> Hashtbl.add by_epoch epoch count
          | Some seen ->
            Alcotest.(check int)
              (Printf.sprintf "epoch %d stable" epoch)
              seen count)
        observations)

let test_server_checkpoint_roundtrip () =
  let snapshot_path = temp_name ".snap" in
  let wal_path = temp_name ".wal" in
  with_server ~snapshot_path ~wal_path (fun sock _srv ->
      let c = ok (Client.connect sock) in
      ignore (ok (Client.update c "insert /library <book><title>Two</title></book>"));
      ignore (ok (Client.update c "content /library/book/title/text() Uno"));
      Alcotest.(check bool) "wal grows while serving" true (Sys.file_exists wal_path);
      Client.close c);
  (* graceful stop checkpointed: snapshot present, WAL subsumed *)
  Alcotest.(check bool) "snapshot written at shutdown" true (Sys.file_exists snapshot_path);
  Alcotest.(check bool) "wal removed by the checkpoint" false (Sys.file_exists wal_path);
  let store, root, _labels, _meta =
    match Xsm_persist.Snapshot.load ~path:snapshot_path with
    | Ok v -> v
    | Error e -> Alcotest.fail e
  in
  (match Xsm_xpath.Eval.Over_store.eval_string store root "//title" with
  | Ok nodes ->
    Alcotest.(check (list string))
      "recovered state is the served state" [ "Uno"; "Two" ]
      (List.map (Xsm_xdm.Store.string_value store) nodes)
  | Error e -> Alcotest.fail e);
  Sys.remove snapshot_path

let test_server_protocol_shutdown () =
  let store, root = boot_library () in
  let socket_path = temp_name ".sock" in
  let config =
    {
      Server.socket_path;
      snapshot_path = None;
      wal_path = None;
      domains = 1;
      group_commit = true;
      use_index = false;
      page_file = None;
      pool_capacity = 64;
      flight_capacity = 64;
      slow_log = None;
      slow_threshold_ms = 10.0;
    }
  in
  let srv = match Server.create config ~store ~root () with Ok s -> s | Error e -> Alcotest.fail e in
  let outcome = ref (Error "never ran") in
  let ready_sem = Semaphore.Binary.make false in
  let t =
    Thread.create
      (fun () ->
        outcome := Server.serve ~on_ready:(fun () -> Semaphore.Binary.release ready_sem) srv)
      ()
  in
  Semaphore.Binary.acquire ready_sem;
  let c = ok (Client.connect socket_path) in
  ok (Client.shutdown c);
  Client.close c;
  Thread.join t;
  (match !outcome with
  | Ok () -> ()
  | Error e -> Alcotest.fail ("serve after Shutdown request: " ^ e));
  Alcotest.(check bool) "socket removed" false (Sys.file_exists socket_path)

(* the disk-paged storage replica: updates absorbed into the mirror,
   queries answered over it (faulting through the tiny shared pool from
   the read domains), pager counters in the stats body, clean
   checkpointed page file after teardown *)
let test_server_paged_mirror () =
  let page_file = temp_name ".pages" in
  Fun.protect
    ~finally:(fun () -> if Sys.file_exists page_file then Sys.remove page_file)
    (fun () ->
      with_server ~domains:2 ~page_file ~pool_capacity:2 (fun sock _srv ->
          let c = ok (Client.connect sock) in
          let _, titles = ok (Client.query c "//title") in
          Alcotest.(check (list string)) "query over the replica" [ "One" ] titles;
          ignore (ok (Client.update c "insert /library <book><title>Two</title></book>"));
          ignore (ok (Client.update c "content /library/book[2]/title/text() Deux"));
          let _, titles = ok (Client.query c "//title") in
          Alcotest.(check (list string)) "mirror absorbed the updates" [ "One"; "Deux" ] titles;
          ignore (ok (Client.update c "delete /library/book[2]"));
          let _, titles = ok (Client.query c "//title") in
          Alcotest.(check (list string)) "mirror absorbed the delete" [ "One" ] titles;
          (match Json.member "pager" (ok (Client.stats c)) with
          | Some (Json.Obj _ as pager) ->
            (match Json.member "accesses" pager with
            | Some (Json.Num n) ->
              Alcotest.(check bool) "replica queries count as block accesses" true (n > 0.)
            | _ -> Alcotest.fail "pager.accesses missing")
          | _ -> Alcotest.fail "stats body must carry the pager object");
          Client.close c);
      (* graceful teardown checkpointed the replica: the file alone
         reconstructs it *)
      let pf = Xsm_pager.Page_file.open_existing page_file in
      Alcotest.(check bool) "page file clean after shutdown" true (Xsm_pager.Page_file.clean pf);
      let bs = Xsm_storage.Block_storage.of_page_file ~capacity:2 pf in
      let doc = Xsm_storage.Block_storage.to_document bs in
      let s = Xsm_xml.Printer.to_string doc in
      Alcotest.(check string) "reopened replica holds the final state"
        "<?xml version=\"1.0\"?>\n<library><book><title>One</title></book></library>" s;
      Xsm_pager.Page_file.close pf)

(* the flight recorder end to end: with a 0ms slow threshold every
   request keeps its plan, failures keep their digests, and the slow
   log gains one parseable JSON line per request *)
let test_server_flight_recorder () =
  let slow_log = temp_name ".slow" in
  Fun.protect
    ~finally:(fun () -> if Sys.file_exists slow_log then Sys.remove slow_log)
    (fun () ->
      with_server ~use_index:true ~slow_log ~slow_threshold_ms:0.0 (fun sock _srv ->
          let c = ok (Client.connect sock) in
          let _, titles = ok (Client.query c "//title") in
          Alcotest.(check (list string)) "query answered" [ "One" ] titles;
          (match Client.update c "delete //nothing" with
          | Error _ -> ()
          | Ok _ -> Alcotest.fail "expected a failing update");
          let flight = ok (Client.introspect c P.Flight) in
          let recent =
            match Json.member "recent" flight with
            | Some (Json.Arr ds) -> ds
            | _ -> Alcotest.fail "flight body missing recent"
          in
          Alcotest.(check bool) "digests recorded" true (List.length recent >= 2);
          let str d k = match Json.member k d with Some (Json.Str s) -> s | _ -> "" in
          let qd =
            match List.filter (fun d -> str d "kind" = "query") recent with
            | d :: _ -> d
            | [] -> Alcotest.fail "no query digest"
          in
          Alcotest.(check string) "query digest detail" "//title" (str qd "detail");
          Alcotest.(check bool) "query digest routed" true (str qd "route" <> "");
          (match Json.member "plan" qd with
          | Some (Json.Obj _) -> ()
          | _ -> Alcotest.fail "slow query digest must carry its plan");
          (match Json.member "est_rows" qd with
          | Some (Json.Arr _) | Some Json.Null -> ()
          | _ -> Alcotest.fail "est_rows must be an interval or null");
          let failed =
            List.exists
              (fun d ->
                match Json.member "outcome" d with Some (Json.Obj _) -> true | _ -> false)
              recent
          in
          Alcotest.(check bool) "failed update digest kept" true failed;
          Client.close c);
      let ic = open_in slow_log in
      let lines = ref [] in
      (try
         while true do
           lines := input_line ic :: !lines
         done
       with End_of_file -> ());
      close_in ic;
      Alcotest.(check bool) "slow log written" true (List.length !lines >= 2);
      List.iter
        (fun line ->
          match Json.parse line with
          | Ok (Json.Obj _ as d) -> (
            match Json.member "latency_ns" d with
            | Some (Json.Num _) -> ()
            | _ -> Alcotest.fail "slow-log line missing latency")
          | Ok _ | Error _ -> Alcotest.failf "slow-log line not an object: %s" line)
        !lines)

(* trace propagation over the wire: a traced query's server spans are
   retrievable by trace id — one root carrying the wire parent, phase
   children nested within its window; untraced requests stay out *)
let test_server_trace_propagation () =
  with_server (fun sock _srv ->
      let c = ok (Client.connect sock) in
      let trace = { P.trace_id = "trace-e2e"; parent_span = 41 } in
      ignore (ok (Client.query ~trace c "//title"));
      ignore (ok (Client.query c "//book"));
      let body = ok (Client.introspect c (P.Trace_events "trace-e2e")) in
      let events =
        match Json.member "events" body with
        | Some (Json.Arr evs) ->
          List.map
            (fun j ->
              match Xsm_obs.Trace.event_of_json j with
              | Ok e -> e
              | Error e -> Alcotest.fail e)
            evs
        | _ -> Alcotest.fail "no events array"
      in
      Alcotest.(check bool) "spans recorded under the trace" true (events <> []);
      let roots = List.filter (fun (e : Xsm_obs.Trace.event) -> e.parent = 0) events in
      (match roots with
      | [ root ] ->
        Alcotest.(check string) "root span kind" "serve.query" root.name;
        Alcotest.(check string) "wire parent attached" "41"
          (List.assoc "wire_parent" root.attrs);
        Alcotest.(check string) "trace id attached" "trace-e2e"
          (List.assoc "trace" root.attrs);
        let children =
          List.filter (fun (e : Xsm_obs.Trace.event) -> e.parent = root.id) events
        in
        Alcotest.(check bool) "phase spans under the root" true (children <> []);
        List.iter
          (fun (e : Xsm_obs.Trace.event) ->
            Alcotest.(check bool)
              (e.name ^ " within the root window")
              true
              (e.start_ns >= root.start_ns
              && Int64.add e.start_ns e.dur_ns <= Int64.add root.start_ns root.dur_ns))
          children
      | _ -> Alcotest.failf "expected one root span, got %d" (List.length roots));
      Client.close c)

(* the openmetrics stats variant: scrapeable text with the server
   counter families present and the terminator in place *)
let test_server_openmetrics () =
  with_server (fun sock _srv ->
      let c = ok (Client.connect sock) in
      ignore (ok (Client.query c "//title"));
      let body = ok (Client.stats ~openmetrics:true c) in
      (match Json.member "openmetrics" body with
      | Some (Json.Str text) ->
        let has needle =
          let nl = String.length needle and hl = String.length text in
          let rec go i = i + nl <= hl && (String.sub text i nl = needle || go (i + 1)) in
          go 0
        in
        Alcotest.(check bool) "requests family" true (has "# TYPE server_requests counter");
        Alcotest.(check bool) "runtime gauge sampled" true (has "runtime_heap_words ");
        Alcotest.(check bool) "terminated" true (has "# EOF")
      | _ -> Alcotest.fail "openmetrics stats reply must carry the text");
      Client.close c)

let suite =
  [
    ( "server.frame",
      [
        Alcotest.test_case "roundtrip and EOF" `Quick test_frame_roundtrip;
        Alcotest.test_case "oversized refused" `Quick test_frame_too_large;
      ] );
    ( "server.protocol",
      [
        Alcotest.test_case "codec roundtrip" `Quick test_protocol_roundtrip;
        Alcotest.test_case "malformed refused" `Quick test_protocol_errors;
      ] );
    ( "server.epoch",
      [
        Alcotest.test_case "counts batches" `Quick test_epoch_counts_batches;
        Alcotest.test_case "excludes writers" `Quick test_epoch_excludes_writers;
      ] );
    ( "server.pool",
      [ Alcotest.test_case "runs and raises" `Quick test_pool_runs_and_raises ] );
    ( "server.commit",
      [
        Alcotest.test_case "per-request baseline" `Quick test_commit_per_request;
        Alcotest.test_case "batches under load" `Quick test_commit_batches_under_load;
        Alcotest.test_case "failure fails the batch" `Quick test_commit_failure_fails_batch;
      ] );
    ( "server.sessions",
      [
        Alcotest.test_case "query/update/validate/stats" `Quick test_server_session_basics;
        Alcotest.test_case "snapshot isolation" `Quick test_server_snapshot_isolation;
        Alcotest.test_case "checkpoint roundtrip" `Quick test_server_checkpoint_roundtrip;
        Alcotest.test_case "paged mirror" `Quick test_server_paged_mirror;
        Alcotest.test_case "flight recorder and slow log" `Quick
          test_server_flight_recorder;
        Alcotest.test_case "trace propagation" `Quick test_server_trace_propagation;
        Alcotest.test_case "openmetrics stats" `Quick test_server_openmetrics;
        Alcotest.test_case "protocol shutdown" `Quick test_server_protocol_shutdown;
      ] );
  ]
