(* The streaming ingest subsystem: SAX lexer, constant-memory
   validator, bulk load.

   - Sax event sequences, positions, entity handling, and invariance
     under chunk boundaries;
   - append_child label laws and Labeler.append_in_document_order;
   - Stream_validator against hand-built cases and, differentially,
     against the tree validator (verdict on random instances,
     first-error path on single-site mutations) and the backtracking
     matcher (non-UPA fallback);
   - Bulk_load against Convert.load + Block_storage.of_store, and a
     crash-point sweep: kill the WAL after n records, recover, expect
     the root plus exactly the first n top-level subtrees. *)

module Q = QCheck
module Name = Xsm_xml.Name
module Tree = Xsm_xml.Tree
module Parser = Xsm_xml.Parser
module Printer = Xsm_xml.Printer
module Store = Xsm_xdm.Store
module Convert = Xsm_xdm.Convert
module Ast = Xsm_schema.Ast
module Gen = Xsm_schema.Generator
module Validator = Xsm_schema.Validator
module Label = Xsm_numbering.Sedna_label
module Labeler = Xsm_numbering.Labeler
module Bs = Xsm_storage.Block_storage
module Wal = Xsm_persist.Wal
module Sax = Xsm_stream.Sax
module SV = Xsm_stream.Stream_validator
module BL = Xsm_stream.Bulk_load

let check = Alcotest.(check bool)
let check_int = Alcotest.(check int)
let check_str = Alcotest.(check string)

let events_of_string ?chunk_size s =
  let sax =
    match chunk_size with
    | None -> Sax.of_string s
    | Some n ->
      let sent = ref 0 in
      Sax.of_function ~chunk_size:n (fun b off len ->
          let k = min len (String.length s - !sent) in
          Bytes.blit_string s !sent b off k;
          sent := !sent + k;
          k)
  in
  let rec go acc =
    match Sax.next sax with None -> List.rev acc | Some e -> go (e :: acc)
  in
  go []

let show_event = function
  | Sax.Start_element n -> "<" ^ Name.to_string n
  | Sax.Attr (n, v) -> Printf.sprintf "@%s=%s" (Name.to_string n) v
  | Sax.Text s -> Printf.sprintf "%S" s
  | Sax.End_element n -> "</" ^ Name.to_string n
  | Sax.Pi (t, d) -> Printf.sprintf "?%s %s" t d
  | Sax.Comment s -> "!" ^ s

let show_events evs = String.concat " " (List.map show_event evs)

(* ---------------- Sax ---------------- *)

let sax_events () =
  let evs =
    events_of_string
      "<?xml version=\"1.0\"?><!-- pre --><a x=\"1\"><b>hi</b>tail<!--c--><?pi d?></a>"
  in
  check_str "event sequence" "<a @x=1 <b \"hi\" </b \"tail\" !c ?pi d </a" (show_events evs)

let sax_positions () =
  let sax = Sax.of_string "<a>\n  <b attr=\"v\"/>\n</a>" in
  let rec collect acc =
    match Sax.next sax with
    | None -> List.rev acc
    | Some e ->
      let p = Sax.event_position sax in
      collect ((e, p) :: acc)
  in
  let evs = collect [] in
  (match List.assoc_opt (Sax.Start_element (Name.local "b")) evs with
  | Some p ->
    check_int "b line" 2 p.Sax.line;
    check_int "b column" 3 p.Sax.column;
    check_int "b offset" 6 p.Sax.offset
  | None -> Alcotest.fail "no <b> event");
  match List.assoc_opt (Sax.End_element (Name.local "a")) evs with
  | Some p -> check_int "</a> line" 3 p.Sax.line
  | None -> Alcotest.fail "no </a> event"

let sax_entities () =
  let evs =
    events_of_string "<a t=\"x&amp;y\">&lt;&#65;&#x42;<![CDATA[<raw&>]]>&gt;</a>"
  in
  check_str "decoded" "<a @t=x&y \"<AB\" \"<raw&>\" \">\" </a" (show_events evs)

let sax_chunk_invariance () =
  let doc =
    "<?xml version=\"1.0\" encoding=\"UTF-8\"?>\n<!DOCTYPE library [<!ELEMENT x y>]>\n\
     <library kind=\"mixed\"><book id=\"b&amp;1\"><title>One &#233; two</title>\n\
     <blurb>pre<!-- gap -->post</blurb></book><![CDATA[]]><empty/> tail </library>\n<!-- after -->"
  in
  let reference = events_of_string doc in
  List.iter
    (fun n ->
      check_str
        (Printf.sprintf "chunk_size %d" n)
        (show_events reference)
        (show_events (events_of_string ~chunk_size:n doc)))
    [ 1; 2; 3; 5; 7; 64 ]

let sax_eol_normalization () =
  (* §2.11 over the streaming lexer: CRLF and bare CR become LF, and
     the answer must not depend on where a refill cuts the input —
     the hard case is "\r\n" split exactly across two chunks, where
     the lexer must remember the pending CR *)
  let doc = "<a>x\r\ny\rz</a>" in
  let reference = events_of_string "<a>x\ny\nz</a>" in
  (* chunk_size 5 ends the first chunk at "<a>x\r": the '\n' opens
     the next chunk and must be absorbed, not doubled *)
  List.iter
    (fun n ->
      check_str
        (Printf.sprintf "chunk_size %d" n)
        (show_events reference)
        (show_events (events_of_string ~chunk_size:n doc)))
    [ 1; 2; 3; 4; 5; 6; 100 ];
  (* a lone CR last in its chunk, followed by a non-LF character *)
  let evs = events_of_string ~chunk_size:5 "<a>x\rY</a>" in
  check_str "pending CR before a non-LF" (show_events (events_of_string "<a>x\nY</a>"))
    (show_events evs);
  (* stream = tree on CRLF input *)
  let crlf = "<a>line1\r\nline2\r\n<b/>\r\n</a>" in
  (match Parser.parse_document crlf with
  | Error e -> Alcotest.failf "tree parse failed: %s" (Parser.error_to_string e)
  | Ok d ->
    check_str "stream agrees with tree on CRLF"
      (show_events (events_of_string (Printer.to_string d)))
      (show_events (events_of_string ~chunk_size:3 crlf)))

let sax_matches_parser () =
  (* the event stream carries the same information the tree parser
     extracts: rebuild the element and compare content *)
  let doc_text =
    Printer.to_string (Xsm_schema.Samples.bookstore_document ~books:5 ())
  in
  let sax = Sax.of_string doc_text in
  let rec build_element name =
    let attrs = ref [] and children = ref [] in
    let rec loop () =
      match Sax.next sax with
      | Some (Sax.Attr (n, v)) ->
        attrs := { Tree.name = n; value = v } :: !attrs;
        loop ()
      | Some (Sax.Text s) ->
        children := Tree.Text s :: !children;
        loop ()
      | Some (Sax.Start_element n) ->
        children := Tree.Element (build_element n) :: !children;
        loop ()
      | Some (Sax.Pi _ | Sax.Comment _) -> loop ()
      | Some (Sax.End_element _) -> ()
      | None -> Alcotest.fail "events ended inside an element"
    in
    loop ();
    { Tree.name; attributes = List.rev !attrs; children = List.rev !children }
  in
  let root =
    match Sax.next sax with
    | Some (Sax.Start_element n) -> build_element n
    | _ -> Alcotest.fail "no root event"
  in
  let reparsed =
    match Parser.parse_document doc_text with Ok d -> d | Error _ -> Alcotest.fail "parse"
  in
  check "event-rebuilt tree =_c parsed tree"
    true
    (Tree.equal_element_content ~ignore_whitespace:false root reparsed.Tree.root)

let expect_syntax what doc f =
  match events_of_string doc with
  | _ -> Alcotest.fail (what ^ ": expected a syntax error")
  | exception Parser.Syntax e -> f e

let sax_errors () =
  expect_syntax "mismatch" "<a><b></a>" (fun e ->
      check "mismatch message" true
        (String.length e.Parser.message > 0
        && String.sub e.Parser.message 0 10 = "mismatched"));
  expect_syntax "dup attr" "<a x=\"1\" x=\"2\"/>" (fun e ->
      check "duplicate attribute" true
        (e.Parser.line = 1 && e.Parser.column > 9));
  expect_syntax "trailing" "<a/><b/>" (fun _ -> ());
  expect_syntax "unterminated" "<a><b>text" (fun _ -> ());
  expect_syntax "unknown entity" "<a>&nosuch;</a>" (fun _ -> ());
  expect_syntax "stray content" "stray" (fun e -> check_int "offset" 0 e.Parser.offset)

(* ---------------- append_child labels ---------------- *)

let label_append_child_laws () =
  let l = Label.append_child Label.root 3 in
  (* order follows the counter, across digit-count boundaries *)
  let indices = [ 0; 1; 2; 251; 252; 253; 254; 1000; 64008; 64009; 70000 ] in
  let labels = List.map (Label.append_child l) indices in
  List.iteri
    (fun i a ->
      List.iteri
        (fun j b ->
          check
            (Printf.sprintf "order %d vs %d" (List.nth indices i) (List.nth indices j))
            (compare i j < 0)
            (Label.compare a b < 0))
        labels)
    labels;
  List.iter
    (fun c ->
      check "is_parent" true (Label.is_parent l c);
      check "is_ancestor from root" true (Label.is_ancestor Label.root c);
      match Label.of_raw (Label.to_raw c) with
      | Ok c' -> check "of_raw roundtrip" true (Label.equal c c')
      | Error e -> Alcotest.fail ("of_raw rejected an append label: " ^ e))
    labels;
  (* interop with the insertion labeller: between two counter labels *)
  let a = Label.append_child l 7 and b = Label.append_child l 8 in
  let m = Label.between a b in
  check "between a m" true (Label.compare a m < 0 && Label.compare m b < 0)

let labeler_append_in_document_order () =
  let rng = Gen.rng 42 in
  let schema = Gen.random_schema ~max_depth:3 rng in
  let doc = Gen.instance rng schema in
  let store = Store.create () in
  let dnode = Convert.load store doc in
  let t = Labeler.append_in_document_order store dnode in
  check "labels agree with the tree" true (Labeler.check_against_tree store dnode t);
  let nodes = Xsm_xdm.Order.nodes_in_order store dnode in
  let labels = List.map (Labeler.label t) nodes in
  let rec sorted = function
    | a :: (b :: _ as rest) -> Label.compare a b < 0 && sorted rest
    | [ _ ] | [] -> true
  in
  check "label order = document order" true (sorted labels)

(* ---------------- stream validator ---------------- *)

let stream_verdict schema doc =
  SV.run schema (Sax.of_string (Printer.to_string doc))

let tree_verdict schema doc = Validator.validate_document doc schema

let first_path = function
  | [] -> "-"
  | (e : SV.error) :: _ -> e.SV.path

let tree_first_path = function
  | [] -> "-"
  | (e : Validator.error) :: _ -> e.Validator.path

let sv_valid_bookstore () =
  let schema = Xsm_schema.Samples.example7_schema in
  let doc = Xsm_schema.Samples.bookstore_document ~books:4 () in
  match stream_verdict schema doc with
  | Ok stats ->
    check "elements counted" true (stats.SV.elements > 4);
    check_int "no fallback" 0 stats.SV.fallback_steps;
    check "depth" true (stats.SV.max_depth >= 2)
  | Error es -> Alcotest.fail (SV.error_to_string (List.hd es))

let sv_invalid_bookstore () =
  let schema = Xsm_schema.Samples.example7_schema in
  let doc = Xsm_schema.Samples.bookstore_invalid_document () in
  match stream_verdict schema doc, tree_verdict schema doc with
  | Error se, Error te ->
    check_str "same first-error path" (tree_first_path te) (first_path se)
  | Ok _, _ -> Alcotest.fail "stream accepted the invalid bookstore"
  | _, Ok _ -> Alcotest.fail "tree accepted the invalid bookstore"

(* every error class once, with the path the tree validator uses *)
let sv_error_paths () =
  let schema =
    Ast.schema
      ~simple_types:[]
      (Ast.element "root"
         (Ast.Anonymous
            (Ast.complex
               ~attributes:[ Ast.attribute "must" "xs:string" ]
               (Some
                  (Ast.sequence
                     [
                       Ast.elem_p (Ast.element "n" ~nillable:true (Ast.named_type "xs:integer"));
                       Ast.elem_p
                         (Ast.element ~repetition:Ast.optional "s" (Ast.named_type "xs:string"));
                     ])))))
  in
  let run_s text = SV.run schema (Sax.of_string text) in
  let run_t text =
    match Parser.parse_document text with
    | Ok d -> tree_verdict schema d
    | Error _ -> Alcotest.fail "parse"
  in
  let agree what text =
    match run_s text, run_t text with
    | Ok _, Ok _ -> Alcotest.fail (what ^ ": expected invalid")
    | Error se, Error te -> check_str what (tree_first_path te) (first_path se)
    | Ok _, Error _ -> Alcotest.fail (what ^ ": stream accepted, tree rejected")
    | Error _, Ok _ -> Alcotest.fail (what ^ ": stream rejected, tree accepted")
  in
  agree "missing required attribute" "<root><n>1</n></root>";
  agree "undeclared attribute" "<root must=\"x\" extra=\"y\"><n>1</n></root>";
  agree "bad simple content" "<root must=\"x\"><n>one</n></root>";
  agree "wrong child" "<root must=\"x\"><z/></root>";
  agree "incomplete content" "<root must=\"x\"></root>";
  agree "text in element-only content" "<root must=\"x\">words<n>1</n></root>";
  agree "nilled must be empty"
    "<root must=\"x\"><n xsi:nil=\"true\">5</n><s>ok</s></root>";
  agree "nil on non-nillable" "<root must=\"x\"><n>1</n><s xsi:nil=\"true\"/></root>";
  agree "root name mismatch" "<wrong must=\"x\"><n>1</n></wrong>"

let sv_nilled_valid () =
  let schema =
    Ast.schema
      (Ast.element "r"
         (Ast.Anonymous
            (Ast.complex
               (Some (Ast.sequence [ Ast.elem_p (Ast.element "n" ~nillable:true (Ast.named_type "xs:integer")) ])))))
  in
  match SV.run schema (Sax.of_string "<r><n xsi:nil=\"true\"/></r>") with
  | Ok _ -> ()
  | Error es -> Alcotest.fail (SV.error_to_string (List.hd es))

let sv_non_upa_fallback () =
  (* (a, b?) | (a, c): non-deterministic on `a`; the tree validator
     refuses, the stream validator answers through the position-set
     fallback, agreeing with the backtracking matcher *)
  let a = Ast.element "a" (Ast.named_type "xs:string") in
  let group =
    Ast.choice
      [
        Ast.group_p
          (Ast.sequence
             [
               Ast.elem_p a;
               Ast.elem_p (Ast.element ~repetition:Ast.optional "b" (Ast.named_type "xs:string"));
             ]);
        Ast.group_p
          (Ast.sequence
             [ Ast.elem_p a; Ast.elem_p (Ast.element "c" (Ast.named_type "xs:string")) ]);
      ]
  in
  let schema = Ast.schema (Ast.element "r" (Ast.Anonymous (Ast.complex (Some group)))) in
  let cases =
    [
      ("<r><a>x</a></r>", [ "a" ]);
      ("<r><a>x</a><b>y</b></r>", [ "a"; "b" ]);
      ("<r><a>x</a><c>z</c></r>", [ "a"; "c" ]);
      ("<r><a>x</a><b>y</b><c>z</c></r>", [ "a"; "b"; "c" ]);
      ("<r><c>z</c></r>", [ "c" ]);
    ]
  in
  List.iter
    (fun (text, names) ->
      let expected = Xsm_schema.Backtrack.matches group (List.map Name.local names) in
      match SV.run schema (Sax.of_string text) with
      | Ok stats ->
        check ("accept " ^ text) true expected;
        check "fallback used" true (stats.SV.fallback_steps > 0)
      | Error _ -> check ("reject " ^ text) false expected)
    cases;
  (* and the tree validator rejects the schema's content model outright *)
  match
    tree_verdict schema
      (match Parser.parse_document "<r><a>x</a></r>" with
      | Ok d -> d
      | Error _ -> assert false)
  with
  | Ok _ -> Alcotest.fail "tree validator accepted a non-UPA model"
  | Error (e :: _) ->
    check "UPA error" true
      (e.Validator.message = "content model violates Unique Particle Attribution")
  | Error [] -> assert false

(* differential property: random schema, random instance *)

let seed_gen = Q.make ~print:string_of_int Q.Gen.(int_bound 1_000_000)

let to_alco ?(count = 100) name law =
  QCheck_alcotest.to_alcotest (Q.Test.make ~count ~name seed_gen law)

let stream_eq_tree_valid_law seed =
  let rng = Gen.rng seed in
  let schema = Gen.random_schema ~max_depth:3 rng in
  let doc = Gen.instance rng schema in
  match stream_verdict schema doc, tree_verdict schema doc with
  | Ok _, Ok _ -> true
  | Error es, _ -> Q.Test.fail_reportf "stream rejected: %s" (SV.error_to_string (List.hd es))
  | _, Error es ->
    Q.Test.fail_reportf "tree rejected: %s" (Validator.error_to_string (List.hd es))

(* single-site mutations: verdicts agree, and when both reject, the
   first reported path is the same *)
type mutation = Rename | Duplicate | Delete | Corrupt

let mutate rng mutation (el : Tree.element) =
  (* collect candidate sites: (parent, child index) over element children *)
  let sites = ref [] in
  let rec walk (e : Tree.element) =
    List.iteri
      (fun i c ->
        match c with
        | Tree.Element ce ->
          sites := (e, i) :: !sites;
          walk ce
        | Tree.Text _ | Tree.Cdata _ | Tree.Comment _ | Tree.Pi _ -> ())
      e.Tree.children
  in
  walk el;
  let sites = !sites in
  if sites = [] then None
  else begin
    let target_parent, target_idx = List.nth sites (Gen.int rng (List.length sites)) in
    let rewrite (e : Tree.element) f =
      let rec go (x : Tree.element) : Tree.element =
        if x == e then f x
        else { x with Tree.children = List.map
                 (function Tree.Element c -> Tree.Element (go c) | other -> other)
                 x.Tree.children }
      in
      go el
    in
    match mutation with
    | Rename ->
      Some
        (rewrite target_parent (fun p ->
             { p with
               Tree.children =
                 List.mapi
                   (fun i c ->
                     match c with
                     | Tree.Element ce when i = target_idx ->
                       Tree.Element { ce with Tree.name = Name.local "zzz_undeclared" }
                     | c -> c)
                   p.Tree.children }))
    | Duplicate ->
      Some
        (rewrite target_parent (fun p ->
             { p with
               Tree.children =
                 List.concat_map
                   (fun (i, c) -> if i = target_idx then [ c; c ] else [ c ])
                   (List.mapi (fun i c -> (i, c)) p.Tree.children) }))
    | Delete ->
      Some
        (rewrite target_parent (fun p ->
             { p with
               Tree.children =
                 List.filteri (fun i _ -> i <> target_idx) p.Tree.children }))
    | Corrupt ->
      Some
        (rewrite target_parent (fun p ->
             { p with
               Tree.children =
                 List.mapi
                   (fun i c ->
                     match c with
                     | Tree.Element ce when i = target_idx ->
                       Tree.Element { ce with Tree.children = [ Tree.Text "#corrupt#" ] }
                     | c -> c)
                   p.Tree.children }))
  end

let stream_eq_tree_mutated_law seed =
  let rng = Gen.rng seed in
  let schema = Gen.random_schema ~max_depth:3 rng in
  let doc = Gen.instance rng schema in
  let mutation =
    match Gen.int rng 4 with 0 -> Rename | 1 -> Duplicate | 2 -> Delete | _ -> Corrupt
  in
  match mutate rng mutation doc.Tree.root with
  | None -> true (* a single-element document: nothing to mutate *)
  | Some root ->
    let doc = { doc with Tree.root = root } in
    (match stream_verdict schema doc, tree_verdict schema doc with
    | Ok _, Ok _ -> true
    | Error se, Error te ->
      let sp = first_path se and tp = tree_first_path te in
      sp = tp || Q.Test.fail_reportf "first-error paths differ: stream %s, tree %s" sp tp
    | Ok _, Error te ->
      Q.Test.fail_reportf "stream accepted what tree rejected: %s"
        (Validator.error_to_string (List.hd te))
    | Error se, Ok _ ->
      Q.Test.fail_reportf "stream rejected what tree accepted: %s"
        (SV.error_to_string (List.hd se)))

(* ---------------- bulk load ---------------- *)

let bulk_of_text ?wal ?on_root text = BL.load ?wal ?on_root (Sax.of_string text)

let reference_storage text =
  let doc = match Parser.parse_document text with Ok d -> d | Error _ -> Alcotest.fail "parse" in
  let store = Store.create () in
  let dnode = Convert.load store doc in
  Bs.of_store store dnode

let bulk_equals_reference text =
  let bs, stats = bulk_of_text text in
  let ref_bs = reference_storage text in
  (match Bs.check_integrity bs with
  | Ok () -> ()
  | Error e -> Alcotest.fail ("integrity: " ^ e));
  check_int "descriptor count" (Bs.descriptor_count ref_bs) (Bs.descriptor_count bs);
  check "content equal" true
    (Tree.equal_content ~ignore_whitespace:false (Bs.to_document ref_bs) (Bs.to_document bs));
  stats

let bulk_load_simple () =
  let stats =
    bulk_equals_reference
      "<lib k=\"v\"><b id=\"1\"><t>One</t>mid<u/>end</b><b id=\"2\">pre<!-- c -->post</b></lib>"
  in
  check_int "elements" 5 stats.BL.elements;
  check_int "attributes" 3 stats.BL.attributes;
  (* "pre<!-- c -->post" is ONE logical text node, as Convert merges it *)
  check_int "texts" 4 stats.BL.texts;
  check_int "depth" 3 stats.BL.max_depth

let bulk_load_random_law seed =
  let rng = Gen.rng seed in
  let schema = Gen.random_schema ~max_depth:3 rng in
  let doc = Gen.instance rng schema in
  ignore (bulk_equals_reference (Printer.to_string doc));
  true

let bulk_load_small_blocks () =
  let text = Printer.to_string (Xsm_schema.Samples.library_document ~books:20 ~papers:20 ()) in
  let bs, _ = BL.load ~block_capacity:4 (Sax.of_string text) in
  (match Bs.check_integrity bs with
  | Ok () -> ()
  | Error e -> Alcotest.fail ("integrity: " ^ e));
  check "many blocks" true (Bs.block_count bs > 10);
  check "content equal" true
    (Tree.equal_content ~ignore_whitespace:false
       (Bs.to_document (reference_storage text))
       (Bs.to_document bs))

let bulk_drain_completed () =
  let text = "<r><a/>t1<b><c/></b>t2<d/></r>" in
  let bl = BL.create () in
  let sax = Sax.of_string text in
  let drained = ref [] in
  let rec loop () =
    match Sax.next sax with
    | None -> ()
    | Some ev ->
      BL.feed bl ev;
      drained := !drained @ BL.drain_completed bl;
      loop ()
  in
  loop ();
  ignore (BL.finish bl);
  (* top-level children only: a, t1, b (not c), t2, d *)
  check_int "completed top-level nodes" 5 (List.length !drained);
  let rec sorted = function
    | a :: (b :: _ as rest) -> Label.compare (Bs.nid a) (Bs.nid b) < 0 && sorted rest
    | [ _ ] | [] -> true
  in
  check "drained in document order" true (sorted !drained)

(* crash sweep: load with a WAL crash injected after n records; recovery
   must yield the root plus exactly the first n top-level subtrees *)
let bulk_crash_sweep () =
  let sections = 5 in
  let doc =
    Tree.document
      (Tree.elem "log"
         ~attrs:[ Tree.attr "v" "1" ]
         ~children:
           (List.init sections (fun i ->
                Tree.Element
                  (Tree.elem "entry"
                     ~attrs:[ Tree.attr "n" (string_of_int i) ]
                     ~children:[ Tree.Text (Printf.sprintf "payload %d" i) ]))))
  in
  let text = Printer.to_string doc in
  let tmp = Filename.temp_file "xsm-stream-crash" "" in
  let wal_path = tmp ^ ".wal" and snap_path = tmp ^ ".snap" in
  let cleanup () =
    List.iter (fun p -> if Sys.file_exists p then Sys.remove p) [ tmp; wal_path; snap_path ]
  in
  Fun.protect ~finally:cleanup @@ fun () ->
  for n = 0 to sections do
    List.iter
      (fun partial_bytes ->
        if Sys.file_exists wal_path then Sys.remove wal_path;
        if Sys.file_exists snap_path then Sys.remove snap_path;
        let wal =
          match
            Wal.Writer.create ~crash:{ Wal.after_records = n; partial_bytes } wal_path
          with
          | Ok w -> w
          | Error e -> Alcotest.fail (Wal.error_message e)
        in
        let on_root root_elem =
          let store = Store.create () in
          let dnode = Convert.load store (Tree.document root_elem) in
          match Xsm_persist.Snapshot.save ~path:snap_path store dnode with
          | Ok _ -> ()
          | Error e -> Alcotest.fail e
        in
        let crashed =
          match bulk_of_text ~wal ~on_root text with
          | _ -> false
          | exception Wal.Crashed -> true
        in
        check (Printf.sprintf "crash fires (n=%d)" n) (n <= sections) crashed;
        (match Wal.Writer.close wal with () -> () | exception _ -> ());
        match Xsm_persist.Recovery.recover ~snapshot:snap_path ~wal:wal_path () with
        | Error e -> Alcotest.fail (Xsm_persist.Recovery.error_message e)
        | Ok (store, root, _labels, stats) ->
          check_int (Printf.sprintf "replayed records (n=%d)" n) n stats.Xsm_persist.Recovery.replayed;
          let expected =
            {
              doc with
              Tree.root =
                {
                  doc.Tree.root with
                  Tree.children =
                    List.filteri (fun i _ -> i < n) doc.Tree.root.Tree.children;
                };
            }
          in
          check
            (Printf.sprintf "prefix recovered (n=%d, partial=%d)" n partial_bytes)
            true
            (Tree.equal_content ~ignore_whitespace:false expected
               (Convert.to_document store root)))
      [ 0; 3 ]
  done

let suite =
  [
    ( "stream.sax",
      [
        Alcotest.test_case "event sequence" `Quick sax_events;
        Alcotest.test_case "positions" `Quick sax_positions;
        Alcotest.test_case "entities and CDATA" `Quick sax_entities;
        Alcotest.test_case "chunk-boundary invariance" `Quick sax_chunk_invariance;
        Alcotest.test_case "EOL normalization across chunks" `Quick sax_eol_normalization;
        Alcotest.test_case "events rebuild the parsed tree" `Quick sax_matches_parser;
        Alcotest.test_case "well-formedness errors" `Quick sax_errors;
      ] );
    ( "stream.labels",
      [
        Alcotest.test_case "append_child laws" `Quick label_append_child_laws;
        Alcotest.test_case "append_in_document_order" `Quick labeler_append_in_document_order;
      ] );
    ( "stream.validate",
      [
        Alcotest.test_case "valid bookstore" `Quick sv_valid_bookstore;
        Alcotest.test_case "invalid bookstore, same path" `Quick sv_invalid_bookstore;
        Alcotest.test_case "error classes, same paths" `Quick sv_error_paths;
        Alcotest.test_case "nilled element accepted" `Quick sv_nilled_valid;
        Alcotest.test_case "non-UPA fallback = backtracking" `Quick sv_non_upa_fallback;
        to_alco "stream = tree on random valid instances" stream_eq_tree_valid_law;
        to_alco "stream = tree on single-site mutations" stream_eq_tree_mutated_law;
      ] );
    ( "stream.load",
      [
        Alcotest.test_case "load = of_store (hand case)" `Quick bulk_load_simple;
        Alcotest.test_case "load = of_store (small blocks)" `Quick bulk_load_small_blocks;
        Alcotest.test_case "drain_completed" `Quick bulk_drain_completed;
        to_alco ~count:50 "load = of_store (random instances)" bulk_load_random_law;
        Alcotest.test_case "crash-point sweep" `Quick bulk_crash_sweep;
      ] );
  ]
