(* The telemetry core (lib/obs) and its instrumentation contracts:
   span nesting/ordering invariants, ring retention, histogram bucket
   boundaries, the qcheck quantile law (monotone in the rank, bounded
   by the observed min/max), the Chrome trace-event exporter
   round-trip, and the planner's index/fallback/pruned counters
   against [explain] on a fixed query set. *)

module Q = QCheck
module Trace = Xsm_obs.Trace
module Metrics = Xsm_obs.Metrics
module Json = Xsm_obs.Json
module Counter = Metrics.Counter
module Histogram = Metrics.Histogram
module Ast = Xsm_schema.Ast
module Tree = Xsm_xml.Tree

let check = Alcotest.check
let check_int = Alcotest.(check int)
let check_str = Alcotest.(check string)

let has_prefix p s =
  String.length s >= String.length p && String.sub s 0 (String.length p) = p

(* run [f] with tracing on and leave the tracer exactly as we found
   it, whatever happens — other tests (and E15's premise that tracing
   is off by default) depend on it *)
let traced f =
  Trace.enabled := true;
  Trace.reset ();
  Fun.protect
    ~finally:(fun () ->
      Trace.enabled := false;
      Trace.detail := false;
      Trace.reset ())
    f

(* ---------------- spans ---------------- *)

let span_nesting () =
  traced (fun () ->
      Trace.with_span "a" (fun () ->
          Trace.with_span ~attrs:[ ("k", "v") ] "b" (fun () ->
              Trace.with_span "c" ignore);
          Trace.with_span "d" ignore);
      let evs = Trace.events () in
      check_int "four spans" 4 (List.length evs);
      (* events are sorted by start time: a preorder of the forest *)
      check Alcotest.(list string) "preorder" [ "a"; "b"; "c"; "d" ]
        (List.map (fun (e : Trace.event) -> e.name) evs);
      let by_name n = List.find (fun (e : Trace.event) -> e.name = n) evs in
      let a = by_name "a" and b = by_name "b" and c = by_name "c" and d = by_name "d" in
      check_int "root has no parent" 0 a.parent;
      check_int "b under a" a.id b.parent;
      check_int "c under b" b.id c.parent;
      check_int "d under a (sibling of b)" a.id d.parent;
      check_int "a at depth 0" 0 a.depth;
      check_int "b at depth 1" 1 b.depth;
      check_int "c at depth 2" 2 c.depth;
      check_int "d at depth 1" 1 d.depth;
      check_str "attrs preserved" "v" (List.assoc "k" b.attrs);
      (* a child lies within its parent's window *)
      check Alcotest.bool "b starts after a" true (b.start_ns >= a.start_ns);
      check Alcotest.bool "b ends before a" true
        (Int64.add b.start_ns b.dur_ns <= Int64.add a.start_ns a.dur_ns))

let span_disabled_is_transparent () =
  Trace.reset ();
  check Alcotest.bool "tracing off" false !Trace.enabled;
  let r = Trace.with_span "quiet" (fun () -> 42) in
  check_int "thunk result" 42 r;
  check_int "nothing recorded" 0 (List.length (Trace.events ()))

let span_records_on_raise () =
  traced (fun () ->
      (try Trace.with_span "boom" (fun () -> failwith "kaput")
       with Failure _ -> ());
      match Trace.events () with
      | [ e ] ->
        check_str "span name" "boom" e.name;
        check Alcotest.bool "exception attr" true (List.mem_assoc "exception" e.attrs)
      | evs -> Alcotest.failf "expected one span, got %d" (List.length evs))

let detail_spans_gated () =
  traced (fun () ->
      Trace.detail := false;
      Trace.with_detail_span "fine" ignore;
      check_int "no detail span without the flag" 0 (List.length (Trace.events ()));
      Trace.detail := true;
      Trace.with_detail_span "fine" ignore;
      check_int "detail span with the flag" 1 (List.length (Trace.events ())))

let ring_retention () =
  traced (fun () ->
      Trace.set_capacity 4;
      Fun.protect
        ~finally:(fun () -> Trace.set_capacity 65536)
        (fun () ->
          for i = 1 to 6 do
            Trace.with_span (Printf.sprintf "s%d" i) ignore
          done;
          let evs = Trace.events () in
          check_int "ring holds capacity spans" 4 (List.length evs);
          check_int "older spans counted as dropped" 2 (Trace.dropped ());
          check Alcotest.(list string) "newest spans survive"
            [ "s3"; "s4"; "s5"; "s6" ]
            (List.map (fun (e : Trace.event) -> e.name) evs)))

(* ---------------- histogram buckets ---------------- *)

let bucket_boundaries () =
  (* bucket 0 holds values <= 1; bucket i holds (2^(i-1), 2^i] *)
  check_int "0.5 in bucket 0" 0 (Histogram.bucket_index 0.5);
  check_int "1.0 in bucket 0" 0 (Histogram.bucket_index 1.0);
  check_int "1.5 in bucket 1" 1 (Histogram.bucket_index 1.5);
  check_int "2.0 in bucket 1 (inclusive bound)" 1 (Histogram.bucket_index 2.0);
  check_int "2.0+eps in bucket 2" 2 (Histogram.bucket_index 2.000001);
  check_int "1024 in bucket 10" 10 (Histogram.bucket_index 1024.0);
  check Alcotest.(float 0.0) "bound of bucket 10" 1024.0 (Histogram.bucket_bound 10);
  (* the boundary law on a spread of magnitudes *)
  List.iter
    (fun v ->
      let i = Histogram.bucket_index v in
      check Alcotest.bool
        (Printf.sprintf "%g below its bucket bound" v)
        true
        (v <= Histogram.bucket_bound i);
      if i > 0 then
        check Alcotest.bool
          (Printf.sprintf "%g above the previous bound" v)
          true
          (v > Histogram.bucket_bound (i - 1)))
    [ 0.001; 1.0; 3.0; 7.99; 8.0; 8.01; 1e6; 1e9; 3.5e9 ]

let histogram_observations () =
  let reg = Metrics.create () in
  let h = Histogram.make ~registry:reg "t.lat" in
  List.iter (Histogram.observe h) [ 1.0; 2.0; 2.0; 7.0; 100.0 ];
  check_int "count" 5 (Histogram.count h);
  check Alcotest.(float 1e-9) "sum" 112.0 (Histogram.sum h);
  check Alcotest.(float 0.0) "min" 1.0 (Histogram.min_value h);
  check Alcotest.(float 0.0) "max" 100.0 (Histogram.max_value h);
  check
    Alcotest.(list (pair (float 0.0) int))
    "non-empty buckets"
    [ (1.0, 1); (2.0, 2); (8.0, 1); (128.0, 1) ]
    (Histogram.buckets h)

let quantile_law =
  let gen =
    Q.make
      ~print:Q.Print.(list float)
      Q.Gen.(
        list_size (int_range 1 60)
          (map (fun x -> Float.abs x +. 0.001) (float_range (-1e9) 1e9)))
  in
  QCheck_alcotest.to_alcotest
    (Q.Test.make ~count:200 ~name:"histogram quantiles monotone and bounded" gen
       (fun values ->
         let reg = Metrics.create () in
         let h = Histogram.make ~registry:reg "law.lat" in
         List.iter (Histogram.observe h) values;
         let qs = [ 0.0; 0.1; 0.25; 0.5; 0.75; 0.9; 0.99; 0.999; 1.0 ] in
         let results = List.map (Histogram.quantile h) qs in
         let lo = Histogram.min_value h and hi = Histogram.max_value h in
         let bounded = List.for_all (fun v -> v >= lo && v <= hi) results in
         let rec monotone = function
           | a :: (b :: _ as rest) -> a <= b && monotone rest
           | _ -> true
         in
         bounded && monotone results))

(* ---------------- Chrome trace round-trip ---------------- *)

let chrome_round_trip () =
  traced (fun () ->
      Trace.with_span ~attrs:[ ("q", "//a \"quoted\"") ] "query" (fun () ->
          Trace.with_span "parse" ignore;
          Trace.with_span "execute" ignore);
      let text = Json.to_string (Trace.to_chrome ()) in
      match Json.parse text with
      | Error e -> Alcotest.failf "exporter output does not parse: %s" e
      | Ok json -> (
        match Json.member "traceEvents" json with
        | Some (Json.Arr evs) ->
          check_int "one event per span" 3 (List.length evs);
          let ts_of ev =
            match Json.member "ts" ev with
            | Some (Json.Num t) -> t
            | _ -> Alcotest.fail "event without a numeric ts"
          in
          let rec non_decreasing = function
            | a :: (b :: _ as rest) -> ts_of a <= ts_of b && non_decreasing rest
            | _ -> true
          in
          check Alcotest.bool "ts non-decreasing" true (non_decreasing evs);
          List.iter
            (fun ev ->
              (match Json.member "ph" ev with
              | Some (Json.Str "X") -> ()
              | _ -> Alcotest.fail "events must be phase-X (complete)");
              match Json.member "name" ev with
              | Some (Json.Str _) -> ()
              | _ -> Alcotest.fail "event without a name")
            evs
        | _ -> Alcotest.fail "no traceEvents array"))

let json_escaping_round_trip () =
  let j =
    Json.Obj
      [
        ("text", Json.Str "line\nbreak \"quote\" back\\slash \ttab");
        ("nums", Json.Arr [ Json.int 42; Json.Num 2.5; Json.Null; Json.Bool true ]);
      ]
  in
  match Json.parse (Json.to_string j) with
  | Ok j' -> check Alcotest.bool "round-trips structurally" true (j = j')
  | Error e -> Alcotest.failf "parse failed: %s" e

let json_unicode_escapes () =
  (* \uXXXX decodes to UTF-8 across the one/two/three-byte ranges *)
  List.iter
    (fun (input, expected) ->
      match Json.parse input with
      | Ok (Json.Str s) -> check_str input expected s
      | Ok _ -> Alcotest.failf "%s: not a string" input
      | Error e -> Alcotest.failf "%s: %s" input e)
    [
      ({|"A"|}, "A");
      ({|"é"|}, "\xc3\xa9");
      ({|"€"|}, "\xe2\x82\xac");
      ({|"aAb"|}, "aAb");
    ];
  (* malformed escapes are errors, not crashes *)
  List.iter
    (fun input ->
      match Json.parse input with
      | Error _ -> ()
      | Ok _ -> Alcotest.failf "%s: must be refused" input)
    [ {|"\u00"|}; {|"\uzzzz"|}; {|"\q"|}; {|"\|} ]

let json_deep_nesting () =
  let depth = 400 in
  let text = String.make depth '[' ^ "1" ^ String.make depth ']' in
  (match Json.parse text with
  | Ok j ->
    let rec unwrap d = function
      | Json.Arr [ inner ] -> unwrap (d + 1) inner
      | Json.Num 1.0 -> check_int "nesting depth preserved" depth d
      | _ -> Alcotest.fail "unexpected shape"
    in
    unwrap 0 j
  | Error e -> Alcotest.failf "deep nesting: %s" e);
  let objs =
    String.concat "" (List.init depth (fun _ -> {|{"k":|}))
    ^ "null" ^ String.make depth '}'
  in
  match Json.parse objs with
  | Ok _ -> ()
  | Error e -> Alcotest.failf "deep objects: %s" e

let contains ~needle hay =
  let nl = String.length needle and hl = String.length hay in
  let rec go i = i + nl <= hl && (String.sub hay i nl = needle || go (i + 1)) in
  go 0

let json_truncated_inputs () =
  (* every truncation is an error, and errors that carry a position
     point into the input *)
  List.iter
    (fun (input, fragment) ->
      match Json.parse input with
      | Ok _ -> Alcotest.failf "%S: truncated input must be refused" input
      | Error e ->
        check Alcotest.bool
          (Printf.sprintf "%S: error %S mentions %S" input e fragment)
          true (contains ~needle:fragment e))
    [
      ({|"abc|}, "unterminated string");
      ({|[1, 2|}, "at 5: expected , or ] in array");
      ({|{"a": 1|}, "at 7: expected , or } in object");
      ({|{"a"|}, "expected :");
      ("", "end of input");
      ({|[1 2]|}, "at 3");
      ({|{"a": 1 "b": 2}|}, "at 8");
      ("[1, 2] tail", "trailing garbage at 7");
    ]

(* ---------------- flight recorder ---------------- *)

module Flight = Xsm_obs.Flight

let digest ?(latency_ns = 1_000L) ?(outcome = Flight.Done) ?(kind = "query") n : Flight.digest
    =
  {
    seq = 0;
    at_ns = Int64.of_int n;
    kind;
    detail = Printf.sprintf "//q%d" n;
    route = "index";
    est_lo = 1;
    est_hi = 4;
    actual_rows = 2;
    pager_hits = 0;
    pager_evictions = 0;
    fsync_ns = 0L;
    latency_ns;
    outcome;
    session = 0;
    request = n;
    trace_id = "";
    plan = None;
  }

let flight_ring_keeps_recent () =
  let f = Flight.create ~capacity:4 () in
  for i = 1 to 6 do
    Flight.record f (digest i)
  done;
  check_int "recorded counts every digest" 6 (Flight.recorded f);
  let recent = List.map (fun (d : Flight.digest) -> d.request) (Flight.recent f) in
  check Alcotest.(list int) "ring holds the newest, oldest first" [ 3; 4; 5; 6 ] recent;
  let seqs = List.map (fun (d : Flight.digest) -> d.seq) (Flight.recent f) in
  check Alcotest.(list int) "sequence numbers stamped in order" [ 3; 4; 5; 6 ] seqs

let flight_tail_policy () =
  let f = Flight.create ~capacity:4 () in
  (* fill the ring with an error and a notably slow request, then
     flood it: eviction must not lose them *)
  Flight.record f (digest ~outcome:(Flight.Failed "boom") 1);
  Flight.record f (digest ~latency_ns:9_999_999L 2);
  for i = 3 to 12 do
    Flight.record f (digest ~latency_ns:(Int64.of_int (10 * i)) i)
  done;
  (match Flight.kept_errors f with
  | [ d ] ->
    check_int "the error digest survived" 1 d.request;
    (match d.outcome with
    | Flight.Failed m -> check_str "message kept" "boom" m
    | Flight.Done -> Alcotest.fail "kept error lost its outcome")
  | ds -> Alcotest.failf "expected one kept error, got %d" (List.length ds));
  let slow = List.map (fun (d : Flight.digest) -> d.request) (Flight.kept_slow f) in
  check Alcotest.bool "the slowest evicted digest survived" true (List.mem 2 slow);
  (* the kept-slow list is the tail: ascending latency, bounded *)
  let lats = List.map (fun (d : Flight.digest) -> d.latency_ns) (Flight.kept_slow f) in
  let rec ascending = function
    | a :: (b :: _ as rest) -> Int64.compare a b <= 0 && ascending rest
    | _ -> true
  in
  check Alcotest.bool "kept-slow ascending by latency" true (ascending lats);
  check Alcotest.bool "kept-slow bounded" true (List.length slow <= 4)

let flight_json_shape () =
  let f = Flight.create ~capacity:4 () in
  Flight.record f (digest 1);
  Flight.record f (digest ~outcome:(Flight.Failed "nope") 2);
  let j = Flight.to_json f in
  (match Json.member "recent" j with
  | Some (Json.Arr ds) -> check_int "both digests listed" 2 (List.length ds)
  | _ -> Alcotest.fail "no recent array");
  let d = Flight.digest_to_json (digest 1) in
  (match Json.member "est_rows" d with
  | Some (Json.Arr [ Json.Num lo; Json.Num hi ]) ->
    check_int "est lo" 1 (int_of_float lo);
    check_int "est hi" 4 (int_of_float hi)
  | _ -> Alcotest.fail "est_rows must be [lo, hi]");
  (match Json.member "outcome" d with
  | Some (Json.Str "ok") -> ()
  | _ -> Alcotest.fail "ok outcome renders as \"ok\"");
  let d' : Flight.digest = { (digest 3) with est_lo = -1; est_hi = -1 } in
  match Json.member "est_rows" (Flight.digest_to_json d') with
  | Some Json.Null -> ()
  | _ -> Alcotest.fail "missing estimate renders as null"

(* ---------------- OpenMetrics exposition ---------------- *)

module Om = Xsm_obs.Openmetrics

let openmetrics_names () =
  check Alcotest.bool "plain name valid" true (Om.valid_name "wal_fsync_ns");
  check Alcotest.bool "colon allowed" true (Om.valid_name "ns:metric");
  check Alcotest.bool "dot invalid" false (Om.valid_name "wal.fsync_ns");
  check Alcotest.bool "leading digit invalid" false (Om.valid_name "2fast");
  check Alcotest.bool "empty invalid" false (Om.valid_name "");
  check_str "dots become underscores" "wal_fsync_ns" (Om.sanitize "wal.fsync_ns");
  check_str "leading digit prefixed" "_2fast" (Om.sanitize "2fast");
  check Alcotest.bool "sanitize output always valid" true
    (List.for_all
       (fun s -> Om.valid_name (Om.sanitize s))
       [ "a.b.c"; "9"; "-"; "pager.writeback_ns"; "\xc3\xa9" ])

let openmetrics_render_grammar () =
  let text =
    Om.render
      [
        Om.Counter { name = "server.requests"; help = "requests \"served\"\n"; value = 7 };
        Om.Gauge { name = "runtime.heap_words"; help = "heap"; value = 123456.0 };
        Om.Histogram
          {
            name = "wal.fsync_ns";
            help = "fsync latency";
            count = 3;
            sum = 42.5;
            buckets = [ (1.0, 1); (2.0, 0); (8.0, 2) ];
          };
      ]
  in
  let lines = String.split_on_char '\n' text in
  let lines = List.filter (fun l -> l <> "") lines in
  check_str "terminated by # EOF" "# EOF" (List.nth lines (List.length lines - 1));
  (* every non-comment line is <valid-name>[{labels}] <value> *)
  List.iter
    (fun line ->
      if String.length line > 0 && line.[0] <> '#' then begin
        let name_end =
          match (String.index_opt line ' ', String.index_opt line '{') with
          | Some s, Some b -> min s b
          | Some s, None -> s
          | _ -> Alcotest.failf "sample line without a value: %s" line
        in
        check Alcotest.bool
          (Printf.sprintf "series name valid in %S" line)
          true
          (Om.valid_name (String.sub line 0 name_end))
      end)
    lines;
  (* counters expose under the _total suffix *)
  check Alcotest.bool "counter _total series" true
    (contains ~needle:"\nserver_requests_total 7" text);
  check Alcotest.bool "counter TYPE line" true
    (contains ~needle:"# TYPE server_requests counter" text);
  (* help strings stay on one line: the newline is escaped (quotes
     pass through — only label values quote-escape in OpenMetrics) *)
  check Alcotest.bool "help escaped" true
    (contains ~needle:"requests \"served\"\\n" text);
  (* histogram buckets are cumulative and end at +Inf = count *)
  check Alcotest.bool "bucket le=1" true
    (contains ~needle:{|wal_fsync_ns_bucket{le="1"} 1|} text);
  check Alcotest.bool "bucket le=2 cumulative" true
    (contains ~needle:{|wal_fsync_ns_bucket{le="2"} 1|} text);
  check Alcotest.bool "bucket le=8 cumulative" true
    (contains ~needle:{|wal_fsync_ns_bucket{le="8"} 3|} text);
  check Alcotest.bool "+Inf bucket equals count" true
    (contains ~needle:{|wal_fsync_ns_bucket{le="+Inf"} 3|} text);
  check Alcotest.bool "sum series" true (contains ~needle:"wal_fsync_ns_sum 42.5" text);
  check Alcotest.bool "count series" true (contains ~needle:"wal_fsync_ns_count 3" text)

let openmetrics_collision_refused () =
  match
    Om.render
      [
        Om.Counter { name = "a.b"; help = ""; value = 1 };
        Om.Counter { name = "a_b"; help = ""; value = 2 };
      ]
  with
  | exception Invalid_argument _ -> ()
  | _ -> Alcotest.fail "colliding sanitized names must be refused"

let openmetrics_registry_scrape () =
  (* the real registry renders, parses as the grammar, and carries
     every registered metric exactly once *)
  let reg = Metrics.create () in
  let c = Counter.make ~registry:reg ~help:"ops" "om.ops" in
  let h = Histogram.make ~registry:reg ~help:"lat" "om.lat_ns" in
  Counter.incr c;
  Histogram.observe h 3.0;
  let text = Metrics.to_openmetrics reg in
  check Alcotest.bool "ops family present" true
    (contains ~needle:"# TYPE om_ops counter" text);
  check Alcotest.bool "histogram family present" true
    (contains ~needle:"# TYPE om_lat_ns histogram" text);
  let count_type_lines =
    List.length
      (List.filter
         (fun l -> has_prefix "# TYPE om_ops " l)
         (String.split_on_char '\n' text))
  in
  check_int "each family typed exactly once" 1 count_type_lines

(* ---------------- counters and cells ---------------- *)

let counter_cells_sum () =
  let reg = Metrics.create () in
  let c = Counter.make ~registry:reg "t.ops" in
  let a = Counter.cell c and b = Counter.cell c in
  Counter.incr c;
  Counter.cell_add a 10;
  Counter.cell_incr b;
  check_int "cell a" 10 (Counter.cell_value a);
  check_int "cell b" 1 (Counter.cell_value b);
  check_int "registry total sums cells" 12 (Counter.value c);
  check Alcotest.bool "get-or-create returns the same handle" true
    (Counter.value (Counter.make ~registry:reg "t.ops") = 12)

(* ---------------- planner counters vs explain ---------------- *)

(* the library schema of test_analysis, trimmed to what the queries
   touch: book(title, author+, issue?) with issue(publisher, year) *)
let library_schema =
  let open Ast in
  let issue =
    complex
      (Some
         (sequence
            [
              elem_p (element "publisher" (named_type "xs:string"));
              elem_p (element "year" (named_type "xs:gYear"));
            ]))
  in
  let book =
    complex
      (Some
         (sequence
            [
              elem_p (element "title" (named_type "xs:string"));
              elem_p
                (element "author" ~repetition:(repeat 1 None) (named_type "xs:string"));
              elem_p (element "issue" ~repetition:optional (named_type "Issue"));
            ]))
  in
  schema
    ~complex_types:[ ("Issue", issue); ("Book", book) ]
    (element "library"
       (Anonymous
          (complex
             (Some
                (sequence
                   [ elem_p (element "book" ~repetition:many (named_type "Book")) ])))))

let library_doc =
  let e name children = Tree.Element (Tree.elem name ~children) in
  let t s = Tree.Text s in
  Tree.document
    (Tree.elem "library"
       ~children:
         [
           e "book"
             [
               e "title" [ t "Foundations" ];
               e "author" [ t "Abiteboul" ];
               e "issue" [ e "publisher" [ t "AW" ]; e "year" [ t "1995" ] ];
             ];
           e "book" [ e "title" [ t "Sedna" ]; e "author" [ t "Novak" ] ];
         ])

let planner_counters_match_explain () =
  let store, dnode =
    match Xsm_schema.Validator.validate_document library_doc library_schema with
    | Ok sd -> sd
    | Error es ->
      Alcotest.failf "fixture invalid: %s"
        (String.concat "; " (List.map Xsm_schema.Validator.error_to_string es))
  in
  let module Pl = Xsm_xpath.Planner.Over_store in
  let planner = Pl.create store dnode in
  Pl.set_pruner planner (Xsm_analysis.Query_static.pruner library_schema);
  (* the registry handles the planner bumps: get-or-create by name *)
  let c_hits = Counter.make "planner.index_hits"
  and c_fallbacks = Counter.make "planner.fallbacks"
  and c_pruned = Counter.make "planner.pruned" in
  let hits0 = Counter.value c_hits
  and fallbacks0 = Counter.value c_fallbacks
  and pruned0 = Counter.value c_pruned
  and local_pruned0 = Pl.pruned_count planner in
  let queries =
    [
      "/library/book/title";
      "//author";
      "/library/book[issue/year='1995']/title";
      "/library/book[1]";
      "//book[2]/title";
      "/library/magazine";
      "/library/book/isbn";
    ]
  in
  let expect_hits = ref 0 and expect_fallbacks = ref 0 and expect_pruned = ref 0 in
  List.iter
    (fun q ->
      let p = Xsm_xpath.Path_parser.parse_exn q in
      let verdict = Pl.explain planner p in
      (if has_prefix "index" verdict then incr expect_hits
       else if has_prefix "fallback" verdict then incr expect_fallbacks
       else if has_prefix "pruned" verdict then incr expect_pruned
       else Alcotest.failf "%s: unclassifiable explain %S" q verdict);
      ignore (Pl.eval planner p))
    queries;
  check_int "every query classified" (List.length queries)
    (!expect_hits + !expect_fallbacks + !expect_pruned);
  (* the fixed set exercises all three outcomes *)
  check Alcotest.bool "set contains index hits" true (!expect_hits > 0);
  check Alcotest.bool "set contains fallbacks" true (!expect_fallbacks > 0);
  check Alcotest.bool "set contains pruned queries" true (!expect_pruned > 0);
  check_int "index_hits counter matches explain" !expect_hits
    (Counter.value c_hits - hits0);
  check_int "fallbacks counter matches explain" !expect_fallbacks
    (Counter.value c_fallbacks - fallbacks0);
  check_int "pruned counter matches explain" !expect_pruned
    (Counter.value c_pruned - pruned0);
  check_int "per-planner pruned view agrees" !expect_pruned
    (Pl.pruned_count planner - local_pruned0)

(* ---------------- clock and span clamps ---------------- *)

let clock_monotone () =
  (* the raw source (gettimeofday) may step backwards; now_ns clamps
     to a watermark, so no read ever precedes an earlier one *)
  let last = ref (Xsm_obs.Clock.now_ns ()) in
  for _ = 1 to 10_000 do
    let t = Xsm_obs.Clock.now_ns () in
    if t < !last then Alcotest.failf "now_ns went backwards: %Ld after %Ld" t !last;
    last := t
  done;
  (* the watermark is shared: a read that happens-after another
     thread's reads (join) can never precede them *)
  let t_before = Xsm_obs.Clock.now_ns () in
  let maxima = Array.make 4 0L in
  let threads =
    List.init 4 (fun i ->
        Thread.create
          (fun () ->
            let m = ref 0L in
            for _ = 1 to 1_000 do
              m := max !m (Xsm_obs.Clock.now_ns ())
            done;
            maxima.(i) <- !m)
          ())
  in
  List.iter Thread.join threads;
  let t_after = Xsm_obs.Clock.now_ns () in
  Array.iter
    (fun m ->
      check Alcotest.bool "thread reads follow the pre-spawn read" true (m >= t_before);
      check Alcotest.bool "post-join read follows thread reads" true (t_after >= m))
    maxima

let record_span_clamps_negative () =
  traced (fun () ->
      Trace.record_span ~attrs:[ ("k", "v") ] "neg" ~start_ns:100L ~stop_ns:40L;
      Trace.record_span "pos" ~start_ns:40L ~stop_ns:100L;
      let evs = Trace.events () in
      check_int "both recorded" 2 (List.length evs);
      let by_name n = List.find (fun (e : Trace.event) -> e.name = n) evs in
      let neg = by_name "neg" and pos = by_name "pos" in
      check Alcotest.int64 "backwards interval clamps to zero" 0L neg.dur_ns;
      check Alcotest.int64 "start kept" 100L neg.start_ns;
      check_str "attrs kept" "v" (List.assoc "k" neg.attrs);
      check Alcotest.int64 "forward interval kept" 60L pos.dur_ns)

(* ---------------- suite ---------------- *)

let suite =
  [
    ( "obs",
      [
        Alcotest.test_case "span nesting and preorder" `Quick span_nesting;
        Alcotest.test_case "disabled tracer is transparent" `Quick
          span_disabled_is_transparent;
        Alcotest.test_case "span recorded on raise" `Quick span_records_on_raise;
        Alcotest.test_case "detail spans need the detail flag" `Quick
          detail_spans_gated;
        Alcotest.test_case "ring retention keeps the newest" `Quick ring_retention;
        Alcotest.test_case "histogram bucket boundaries" `Quick bucket_boundaries;
        Alcotest.test_case "histogram observation bookkeeping" `Quick
          histogram_observations;
        quantile_law;
        Alcotest.test_case "chrome trace round-trip" `Quick chrome_round_trip;
        Alcotest.test_case "json escaping round-trip" `Quick json_escaping_round_trip;
        Alcotest.test_case "json unicode escapes" `Quick json_unicode_escapes;
        Alcotest.test_case "json deep nesting" `Quick json_deep_nesting;
        Alcotest.test_case "json truncated inputs carry positions" `Quick
          json_truncated_inputs;
        Alcotest.test_case "flight ring keeps the newest" `Quick flight_ring_keeps_recent;
        Alcotest.test_case "flight tail policy keeps errors and slowest" `Quick
          flight_tail_policy;
        Alcotest.test_case "flight digest json shape" `Quick flight_json_shape;
        Alcotest.test_case "openmetrics name grammar" `Quick openmetrics_names;
        Alcotest.test_case "openmetrics exposition grammar" `Quick
          openmetrics_render_grammar;
        Alcotest.test_case "openmetrics collision refused" `Quick
          openmetrics_collision_refused;
        Alcotest.test_case "openmetrics registry scrape" `Quick
          openmetrics_registry_scrape;
        Alcotest.test_case "counter cells sum into the registry" `Quick
          counter_cells_sum;
        Alcotest.test_case "planner counters match explain" `Quick
          planner_counters_match_explain;
        Alcotest.test_case "clock is monotone across threads" `Quick clock_monotone;
        Alcotest.test_case "record_span clamps negative durations" `Quick
          record_span_clamps_negative;
      ] );
  ]
