let () =
  Alcotest.run "xsm"
    (Test_xml.suite @ Test_datatypes.suite @ Test_conformance.suite @ Test_xdm.suite @ Test_schema.suite
   @ Test_xsd.suite @ Test_update.suite @ Test_identity.suite @ Test_numbering.suite @ Test_storage.suite @ Test_xpath.suite @ Test_flwor.suite
   @ Test_properties.suite @ Test_index.suite @ Test_index_maintenance.suite
   @ Test_persist.suite @ Test_analysis.suite @ Test_obs.suite @ Test_stream.suite
   @ Test_pager.suite @ Test_server.suite)
