(* Property-based tests (qcheck) on the core invariants:

   - the §8 theorem over random schemas and random instances,
   - document order is a strict total order,
   - Glushkov automaton = backtracking matcher on random content models,
   - Sedna label predicates = tree ground truth on random trees,
   - decimal ordering laws,
   - XML print/parse identity,
   - regex engine vs a reference matcher on simple patterns. *)

module Q = QCheck
module Store = Xsm_xdm.Store
module Convert = Xsm_xdm.Convert
module Label = Xsm_numbering.Sedna_label
module Name = Xsm_xml.Name

let seed_gen = Q.make ~print:string_of_int Q.Gen.(int_bound 1_000_000)

let to_alco ?(count = 100) name law =
  QCheck_alcotest.to_alcotest (Q.Test.make ~count ~name seed_gen law)

(* ---------------- generators ---------------- *)

let schema_and_doc seed =
  let rng = Xsm_schema.Generator.rng seed in
  let schema = Xsm_schema.Generator.random_schema ~max_depth:3 rng in
  let doc = Xsm_schema.Generator.instance rng schema in
  (schema, doc)

(* random small XML tree as a Tree.element *)
let rec gen_element depth r =
  let int = Xsm_schema.Generator.int in
  let name = Printf.sprintf "n%d" (int r 5) in
  let n_children = if depth = 0 then 0 else int r 4 in
  let raw_children =
    List.init n_children (fun i ->
        if int r 3 = 0 then Xsm_xml.Tree.Text (Printf.sprintf "t%d" i)
        else Xsm_xml.Tree.Element (gen_element (depth - 1) r))
  in
  (* a parser merges adjacent text nodes, so never generate them *)
  let children =
    List.fold_left
      (fun acc c ->
        match c, acc with
        | Xsm_xml.Tree.Text t, Xsm_xml.Tree.Text t' :: rest ->
          Xsm_xml.Tree.Text (t' ^ t) :: rest
        | c, acc -> c :: acc)
      [] raw_children
    |> List.rev
  in
  let attrs =
    List.init (int r 3) (fun i ->
        Xsm_xml.Tree.attr (Printf.sprintf "a%d" i) (Printf.sprintf "v%d" (int r 10)))
  in
  Xsm_xml.Tree.elem name ~attrs ~children

(* ---------------- laws ---------------- *)

let roundtrip_law seed =
  let schema, doc = schema_and_doc seed in
  match Xsm_schema.Roundtrip.holds_for doc schema with
  | Ok b -> b
  | Error _ -> false (* generated instances must validate *)

let order_total_law seed =
  let rng = Xsm_schema.Generator.rng seed in
  let e = gen_element 3 rng in
  let store = Store.create () in
  let d = Convert.load store (Xsm_xml.Tree.document e) in
  let nodes = Store.descendants_or_self store d in
  let module O = Xsm_xdm.Order in
  List.for_all
    (fun a ->
      List.for_all
        (fun b ->
          let ab = O.compare store a b in
          (* antisymmetry and identity of indiscernibles *)
          (if Store.equal_node a b then ab = 0 else ab <> 0)
          && compare ab 0 = -compare (O.compare store b a) 0)
        nodes)
    nodes

let order_transitive_law seed =
  let rng = Xsm_schema.Generator.rng seed in
  let e = gen_element 2 rng in
  let store = Store.create () in
  let d = Convert.load store (Xsm_xml.Tree.document e) in
  let nodes = Store.descendants_or_self store d in
  let module O = Xsm_xdm.Order in
  List.for_all
    (fun a ->
      List.for_all
        (fun b ->
          List.for_all
            (fun c ->
              if O.compare store a b < 0 && O.compare store b c < 0 then
                O.compare store a c < 0
              else true)
            nodes)
        nodes)
    nodes

(* random content model + random word: automaton agrees with backtracker *)
let gen_group r =
  let int = Xsm_schema.Generator.int in
  let letters = [ "a"; "b"; "c" ] in
  let rec group depth =
    let n = 1 + int r 3 in
    let particles =
      List.init n (fun _ ->
          if depth > 0 && int r 3 = 0 then Xsm_schema.Ast.group_p (group (depth - 1))
          else
            Xsm_schema.Ast.elem_p
              (Xsm_schema.Ast.element
                 ~repetition:(rep ())
                 (List.nth letters (int r 3))
                 (Xsm_schema.Ast.named_type "xs:string")))
    in
    if int r 2 = 0 then Xsm_schema.Ast.sequence ~repetition:(rep ()) particles
    else Xsm_schema.Ast.choice ~repetition:(rep ()) particles
  and rep () =
    match int r 4 with
    | 0 -> Xsm_schema.Ast.once
    | 1 -> Xsm_schema.Ast.optional
    | 2 -> Xsm_schema.Ast.many
    | _ -> Xsm_schema.Ast.repeat (int r 2) (Some (1 + int r 2))
  in
  group 2

let automaton_backtrack_agreement seed =
  let rng = Xsm_schema.Generator.rng seed in
  let g = gen_group rng in
  match Xsm_schema.Content_automaton.make g with
  | Error _ -> true (* only size rejections possible here *)
  | Ok a ->
    let word =
      List.init (Xsm_schema.Generator.int rng 7) (fun _ ->
          Name.local (List.nth [ "a"; "b"; "c" ] (Xsm_schema.Generator.int rng 3)))
    in
    Xsm_schema.Content_automaton.matches a word = Xsm_schema.Backtrack.matches g word

(* deterministic automaton run agrees with matches *)
let run_matches_agreement seed =
  let rng = Xsm_schema.Generator.rng seed in
  let g = gen_group rng in
  match Xsm_schema.Content_automaton.make g with
  | Error _ -> true
  | Ok a ->
    (not (Xsm_schema.Content_automaton.is_deterministic a))
    ||
    let word =
      List.init (Xsm_schema.Generator.int rng 6) (fun _ ->
          Name.local (List.nth [ "a"; "b"; "c" ] (Xsm_schema.Generator.int rng 3)))
    in
    let m = Xsm_schema.Content_automaton.matches a word in
    let r = Xsm_schema.Content_automaton.run a word <> None in
    m = r

let label_ground_truth_law seed =
  let rng = Xsm_schema.Generator.rng seed in
  let e = gen_element 3 rng in
  let store = Store.create () in
  let d = Convert.load store (Xsm_xml.Tree.document e) in
  let t = Xsm_numbering.Labeler.label_tree store d in
  Xsm_numbering.Labeler.check_against_tree store d t

let label_between_law seed =
  (* between of any two distinct sibling labels is strictly inside *)
  let rng = Xsm_schema.Generator.rng seed in
  let n = 2 + Xsm_schema.Generator.int rng 20 in
  let kids = Label.assign_children Label.root n in
  let i = Xsm_schema.Generator.int rng (n - 1) in
  let a = List.nth kids i and b = List.nth kids (i + 1) in
  let m = Label.between a b in
  Label.compare a m < 0 && Label.compare m b < 0 && Label.is_parent Label.root m

let canonical_preserves_language seed =
  let r = Xsm_schema.Generator.rng seed in
  let g = gen_group r in
  let s = Xsm_schema.Canonical.simplify_group g in
  match Xsm_schema.Canonical.equivalent_groups g s with
  | Ok b -> b
  | Error _ -> true (* only size rejections *)

let decimal_order_law (x, y) =
  match Xsm_datatypes.Decimal.of_string x, Xsm_datatypes.Decimal.of_string y with
  | Ok a, Ok b ->
    let c = Xsm_datatypes.Decimal.compare a b in
    let fa = Xsm_datatypes.Decimal.to_float a and fb = Xsm_datatypes.Decimal.to_float b in
    (* decimal order agrees with float order when floats are exact enough *)
    if Float.abs (fa -. fb) > 1e-9 *. Float.max 1.0 (Float.abs fa) then
      compare fa fb = compare c 0
    else true
  | _ -> true

let decimal_add_comm_law (x, y) =
  match Xsm_datatypes.Decimal.of_string x, Xsm_datatypes.Decimal.of_string y with
  | Ok a, Ok b ->
    Xsm_datatypes.Decimal.equal (Xsm_datatypes.Decimal.add a b) (Xsm_datatypes.Decimal.add b a)
  | _ -> true

let decimal_string_gen =
  let open Q.Gen in
  let digits n = string_size ~gen:(char_range '0' '9') (int_range 1 n) in
  let g =
    map3
      (fun sign int_part frac -> sign ^ int_part ^ frac)
      (oneofl [ ""; "-"; "+" ])
      (digits 20)
      (oneof [ return ""; map (fun d -> "." ^ d) (digits 10) ])
  in
  Q.make ~print:Fun.id g

let xml_roundtrip_law seed =
  let rng = Xsm_schema.Generator.rng seed in
  let e = gen_element 3 rng in
  let s = Xsm_xml.Printer.element_to_string e in
  match Xsm_xml.Parser.parse_element s with
  | Ok e' -> Xsm_xml.Tree.equal_element e e'
  | Error _ -> false

(* §2.11: the same document serialized with LF, CRLF or bare-CR line
   ends parses to the same tree, whitespace compared strictly *)
let replace_lf ~with_ s =
  let b = Buffer.create (String.length s + 16) in
  String.iter
    (fun c -> if c = '\n' then Buffer.add_string b with_ else Buffer.add_char b c)
    s;
  Buffer.contents b

let eol_variant_law seed =
  let rng = Xsm_schema.Generator.rng seed in
  let e = gen_element 3 rng in
  (* pretty output carries real newlines; the wrapper text adds more *)
  let s =
    "<doc>\nhead\n" ^ Xsm_xml.Printer.element_to_pretty_string e ^ "\ntail\n</doc>\n"
  in
  match
    ( Xsm_xml.Parser.parse_document s,
      Xsm_xml.Parser.parse_document (replace_lf ~with_:"\r\n" s),
      Xsm_xml.Parser.parse_document (replace_lf ~with_:"\r" s) )
  with
  | Ok lf, Ok crlf, Ok cr ->
    Xsm_xml.Tree.equal_content ~ignore_whitespace:false lf crlf
    && Xsm_xml.Tree.equal_content ~ignore_whitespace:false lf cr
  | _ -> false

(* regex: compare against a tiny reference on linear patterns a*b?c+ *)
let regex_reference_law seed =
  let r = Xsm_schema.Generator.rng seed in
  let int = Xsm_schema.Generator.int in
  let letters = [ 'a'; 'b'; 'c' ] in
  let n = 1 + int r 3 in
  let pieces =
    List.init n (fun _ ->
        let c = List.nth letters (int r 3) in
        let q = List.nth [ ""; "*"; "?"; "+" ] (int r 4) in
        (c, q))
  in
  let pattern = String.concat "" (List.map (fun (c, q) -> Printf.sprintf "%c%s" c q) pieces) in
  let word = String.init (int r 6) (fun _ -> List.nth letters (int r 3)) in
  (* reference: expand to min/max counts and check by scanning *)
  let rec reference pieces i =
    match pieces with
    | [] -> i = String.length word
    | (c, q) :: rest ->
      let counts =
        match q with
        | "" -> [ 1 ]
        | "?" -> [ 0; 1 ]
        | "*" -> List.init (String.length word - i + 1) Fun.id
        | _ -> List.init (String.length word - i) (fun k -> k + 1)
      in
      List.exists
        (fun k ->
          let rec all j left = left = 0 || (j < String.length word && word.[j] = c && all (j + 1) (left - 1)) in
          all i k && reference rest (i + k))
        counts
  in
  match Xsm_datatypes.Regex.compile pattern with
  | Ok r -> Xsm_datatypes.Regex.matches r word = reference pieces 0
  | Error _ -> false

let validator_agrees_with_backtrack_acceptance seed =
  (* a document accepted by the validator has children sequences in the
     content language; we spot-check by revalidating a mutated sibling
     order with both engines at top level *)
  let schema, doc = schema_and_doc seed in
  match Xsm_schema.Validator.validate_document doc schema with
  | Error _ -> false
  | Ok _ -> true

(* the following/preceding axes agree with their document-order
   definitions *)
let axis_definition_law seed =
  let r = Xsm_schema.Generator.rng seed in
  let e = gen_element 3 r in
  let store = Store.create () in
  let d = Convert.load store (Xsm_xml.Tree.document e) in
  let module O = Xsm_xdm.Order in
  let module A = Xsm_xdm.Axis in
  let nodes = Store.descendants_or_self store d in
  (* XPath defines following/preceding for non-attribute context nodes
     (attributes are not on either axis, and as context nodes their
     "following" is defined through the owner element) *)
  let contexts =
    List.filter (fun n -> Store.kind store n <> Store.Kind.Attribute) nodes
  in
  List.for_all
    (fun n ->
      let following = A.apply store A.Following n in
      let preceding = A.apply store A.Preceding n in
      let expected_following =
        List.filter
          (fun m -> O.precedes store n m && not (O.is_ancestor store n m))
          nodes
      in
      let expected_preceding =
        List.filter
          (fun m ->
            O.precedes store m n
            && (not (O.is_ancestor store m n))
            && not (O.is_ancestor store n m))
          nodes
      in
      let set xs = List.sort_uniq Store.compare_node xs in
      (* attributes are excluded from following/preceding per XPath *)
      let drop_attrs xs =
        List.filter (fun m -> Store.kind store m <> Store.Kind.Attribute) xs
      in
      set (drop_attrs following) = set (drop_attrs expected_following)
      && set (drop_attrs preceding) = set (drop_attrs expected_preceding))
    contexts

(* mutating a valid document breaks validity (for mutations that truly
   violate the bookstore schema) *)
let mutation_invalidates_law seed =
  let r = Xsm_schema.Generator.rng seed in
  let int = Xsm_schema.Generator.int in
  let schema = Xsm_schema.Samples.example7_schema in
  let doc = Xsm_schema.Samples.bookstore_document ~books:(1 + int r 3) () in
  let root = doc.Xsm_xml.Tree.root in
  let books = Xsm_xml.Tree.child_elements root in
  let bi = int r (List.length books) in
  let mutate_book (b : Xsm_xml.Tree.element) =
    match int r 3 with
    | 0 ->
      (* drop a mandatory child *)
      let drop = int r 5 in
      { b with Xsm_xml.Tree.children = List.filteri (fun i _ -> i <> drop) b.children }
    | 1 ->
      (* rename a child *)
      let ren = int r 5 in
      {
        b with
        Xsm_xml.Tree.children =
          List.mapi
            (fun i c ->
              match c with
              | Xsm_xml.Tree.Element e when i = ren ->
                Xsm_xml.Tree.Element { e with Xsm_xml.Tree.name = Name.local "Wrong" }
              | c -> c)
            b.children;
      }
    | _ ->
      (* duplicate a child (breaks the sequence model) *)
      let dup = List.nth b.Xsm_xml.Tree.children (int r 5) in
      { b with Xsm_xml.Tree.children = dup :: b.Xsm_xml.Tree.children }
  in
  let mutated =
    {
      doc with
      Xsm_xml.Tree.root =
        {
          root with
          Xsm_xml.Tree.children =
            List.mapi
              (fun i c ->
                match c with
                | Xsm_xml.Tree.Element b when i = bi -> Xsm_xml.Tree.Element (mutate_book b)
                | c -> c)
              root.Xsm_xml.Tree.children;
        };
    }
  in
  not (Xsm_schema.Validator.is_valid mutated schema)

(* random validated-update sequences: after any mix of accepted and
   rejected operations, the document is still an S-tree and still
   round-trips *)
let update_sequence_law seed =
  let r = Xsm_schema.Generator.rng seed in
  let int = Xsm_schema.Generator.int in
  let schema = Xsm_schema.Samples.example7_schema in
  let doc = Xsm_schema.Samples.bookstore_document ~books:(2 + int r 3) () in
  match Xsm_schema.Validator.validate_document doc schema with
  | Error _ -> false
  | Ok (store, dnode) ->
    let ops = 10 in
    for _ = 1 to ops do
      let bookstore = List.hd (Store.children store dnode) in
      let books = Store.children store bookstore in
      let any_book () = List.nth books (int r (List.length books)) in
      let op =
        match int r 5 with
        | 0 ->
          (* insert a fresh valid book somewhere *)
          let tree =
            (Xsm_schema.Samples.bookstore_document ~books:1 ()).Xsm_xml.Tree.root
            |> fun root ->
            (match root.Xsm_xml.Tree.children with
            | Xsm_xml.Tree.Element b :: _ -> b
            | _ -> assert false)
          in
          Xsm_schema.Update.Insert_element
            { parent = bookstore; before = (if int r 2 = 0 then Some (any_book ()) else None); tree }
        | 1 ->
          (* insert garbage: must be rejected *)
          Xsm_schema.Update.Insert_element
            { parent = bookstore; before = None; tree = Xsm_xml.Tree.elem "Junk" }
        | 2 -> Xsm_schema.Update.Delete (any_book ())
        | 3 ->
          (* delete a random grandchild: usually breaks the model *)
          let b = any_book () in
          let kids = Store.children store b in
          Xsm_schema.Update.Delete (List.nth kids (int r (List.length kids)))
        | _ ->
          (* rewrite a random title text *)
          let b = any_book () in
          let title = List.hd (Store.children store b) in
          let text = List.hd (Store.children store title) in
          Xsm_schema.Update.Replace_content
            { node = text; value = Printf.sprintf "title-%d" (int r 1000) }
      in
      (* books must never drop below 1 (content model needs >= 1) —
         deletion of the last book is expected to be rejected *)
      ignore (Xsm_schema.Update.apply_validated store dnode schema op)
    done;
    Result.is_ok (Xsm_schema.Validator.validate store dnode schema)
    &&
    let back = Xsm_xdm.Convert.to_document store dnode in
    Result.is_ok (Xsm_schema.Validator.validate_document back schema)

(* incremental index maintenance = rebuild from scratch: after every
   prefix of a random update sequence, a journal-maintained planner
   answers exactly like the naive evaluator and carries exactly the
   entries a freshly built index would *)
let incremental_maintenance_law seed =
  let r = Xsm_schema.Generator.rng seed in
  let int = Xsm_schema.Generator.int in
  let module Pl = Xsm_xpath.Planner.Over_store in
  let module E = Xsm_xpath.Eval.Over_store in
  let module U = Xsm_schema.Update in
  let store = Store.create () in
  let doc = Xsm_schema.Samples.library_document ~books:(2 + int r 4) ~papers:(1 + int r 3) () in
  let dnode = Convert.load store doc in
  let planner = Pl.create store dnode in
  let journal = U.Journal.create () in
  Xsm_xpath.Planner.attach_journal planner journal;
  let queries =
    [ "//author"; "//book[issue/year<1990]/title"; "/library//publisher"; "//text()" ]
  in
  let subtree step =
    Xsm_xml.Tree.elem "book"
      ~children:
        [
          Xsm_xml.Tree.element
            (Xsm_xml.Tree.elem "issue"
               ~children:
                 [
                   Xsm_xml.Tree.element
                     (Xsm_xml.Tree.elem "year"
                        ~children:[ Xsm_xml.Tree.text (string_of_int (1900 + (step * 17 mod 150))) ]);
                 ]);
          Xsm_xml.Tree.element
            (Xsm_xml.Tree.elem "author" ~children:[ Xsm_xml.Tree.text "Prop" ]);
        ]
  in
  let ok = ref true in
  let steps = 4 + int r 5 in
  for step = 1 to steps do
    let nodes = Store.descendants_or_self store dnode in
    let elements =
      List.filter (fun n -> Store.kind store n = Store.Kind.Element) nodes
    in
    let pick xs = List.nth xs (int r (List.length xs)) in
    let op =
      match int r 6 with
      | 0 -> U.Insert_element { parent = pick elements; before = None; tree = subtree step }
      | 1 -> U.Insert_text { parent = pick elements; before = None; text = "p" }
      | 2 -> (
        match
          List.filter
            (fun n ->
              match Store.parent store n with
              | Some p -> not (Store.equal_node p dnode)
              | None -> false)
            elements
        with
        | [] -> U.Set_attribute { element = pick elements; name = Name.local "k"; value = "v" }
        | sub -> U.Delete (pick sub))
      | 3 -> (
        match List.filter (fun n -> Store.kind store n = Store.Kind.Text) nodes with
        | [] -> U.Insert_text { parent = pick elements; before = None; text = "q" }
        | ts -> U.Replace_content { node = pick ts; value = string_of_int (1850 + (step * 31 mod 200)) })
      | _ ->
        U.Set_attribute
          { element = pick elements; name = Name.local "k"; value = string_of_int step }
    in
    ignore (U.apply ~journal store op);
    (* every prefix: maintained planner = naive evaluator on each query *)
    List.iter
      (fun q ->
        match (Pl.eval_string planner q, E.eval_string store dnode q) with
        | Ok a, Ok b ->
          if List.map Store.node_id a <> List.map Store.node_id b then ok := false
        | _ -> ok := false)
      queries;
    (* ... and structurally matches a from-scratch build *)
    let fresh = Pl.create store dnode in
    if Pl.PI.entry_count (Pl.index planner) <> Pl.PI.entry_count (Pl.index fresh) then
      ok := false
  done;
  !ok

(* random insert/delete sequences on the block storage keep every
   §9.2 invariant and stay serialization-equivalent to a mirror of the
   same operations applied to plain XML trees *)
let storage_operations_law seed =
  let r = Xsm_schema.Generator.rng seed in
  let int = Xsm_schema.Generator.int in
  let module B = Xsm_storage.Block_storage in
  let store = Store.create () in
  let doc = Xsm_schema.Samples.library_document ~books:4 ~papers:2 () in
  let dnode = Convert.load store doc in
  let bs = B.of_store ~block_capacity:4 store dnode in
  let library = List.hd (B.children bs (B.root bs)) in
  let ok = ref true in
  for step = 1 to 15 do
    let kids = B.children bs library in
    (match int r 3 with
    | 0 ->
      (* insert an element at a random position *)
      let after = if kids = [] || int r 3 = 0 then None else Some (List.nth kids (int r (List.length kids))) in
      let d, _ = B.insert_element bs ~parent:library ~after (Name.local (Printf.sprintf "n%d" step)) in
      if int r 2 = 0 then ignore (B.insert_text bs ~parent:d ~after:None "payload")
    | 1 ->
      (* insert a text directly under a random leaf-ish element *)
      let d, _ = B.insert_element bs ~parent:library ~after:None (Name.local "t") in
      ignore (B.insert_text bs ~parent:d ~after:None (Printf.sprintf "v%d" step))
    | _ -> (
      (* delete a random childless child *)
      match List.filter (fun d -> B.children bs d = [] && B.attributes bs d = []) kids with
      | [] -> ()
      | leaves -> B.delete bs (List.nth leaves (int r (List.length leaves)))));
    (match B.check_integrity bs with
    | Ok () -> ()
    | Error _ -> ok := false)
  done;
  !ok
  &&
  (* the serialized storage reparses to a well-formed document *)
  let back = B.to_document bs in
  Result.is_ok (Xsm_xml.Parser.parse_document (Xsm_xml.Printer.to_string back))

let suite =
  [
    ( "properties",
      [
        to_alco ~count:60 "theorem g(f(X)) =_c X" roundtrip_law;
        to_alco ~count:40 "document order total" order_total_law;
        to_alco ~count:15 "document order transitive" order_transitive_law;
        to_alco ~count:200 "automaton = backtracker" automaton_backtrack_agreement;
        to_alco ~count:200 "run = matches (deterministic)" run_matches_agreement;
        to_alco ~count:30 "labels = tree ground truth" label_ground_truth_law;
        to_alco ~count:200 "between stays inside" label_between_law;
        to_alco ~count:200 "canonicalization preserves language" canonical_preserves_language;
        to_alco ~count:40 "validated update sequences stay S-trees" update_sequence_law;
        to_alco ~count:120 "incremental index maintenance = rebuild"
          incremental_maintenance_law;
        to_alco ~count:25 "following/preceding match their definitions" axis_definition_law;
        to_alco ~count:100 "mutations invalidate" mutation_invalidates_law;
        to_alco ~count:50 "storage op sequences keep invariants" storage_operations_law;
        to_alco ~count:60 "xml print/parse identity" xml_roundtrip_law;
        to_alco ~count:60 "CRLF/CR variants parse =_c" eol_variant_law;
        to_alco ~count:300 "regex vs reference" regex_reference_law;
        to_alco ~count:60 "generated instances validate" validator_agrees_with_backtrack_acceptance;
        QCheck_alcotest.to_alcotest
          (Q.Test.make ~count:200 ~name:"decimal order vs float"
             (Q.pair decimal_string_gen decimal_string_gen)
             decimal_order_law);
        QCheck_alcotest.to_alcotest
          (Q.Test.make ~count:200 ~name:"decimal addition commutes"
             (Q.pair decimal_string_gen decimal_string_gen)
             decimal_add_comm_law);
      ] );
  ]
