(* Tests for xsm_xpath: parser, evaluation over the XDM store and the
   block storage, agreement between backends, schema-driven path. *)

module Store = Xsm_xdm.Store
module Convert = Xsm_xdm.Convert
module B = Xsm_storage.Block_storage
module E = Xsm_xpath.Eval.Over_store
module ES = Xsm_xpath.Eval.Over_storage
module SD = Xsm_xpath.Schema_driven
module P = Xsm_xpath.Path_parser

let check = Alcotest.(check bool)
let check_int = Alcotest.(check int)

let fixture () =
  let store = Store.create () in
  let dnode = Convert.load store Xsm_schema.Samples.example8_document in
  (store, dnode)

let eval store dnode q =
  match E.eval_string store dnode q with
  | Ok ns -> E.strings store ns
  | Error e -> Alcotest.failf "%s: %s" q e

(* ---------------- parser ---------------- *)

let test_parse_shapes () =
  let ok s = check s true (Result.is_ok (P.parse s)) in
  ok "/a/b/c";
  ok "//b";
  ok "/a//b";
  ok "a/b";
  ok "/a/b[2]";
  ok "/a/b[last()]";
  ok "/a/b[position()=3]";
  ok "/a/b[position()<=3]";
  ok "/a/b[position()<3]";
  ok "/a/b[position()>=2]";
  ok "/a/b[position()>1]";
  ok "/a/b[last()-1]";
  ok "//book[author]";
  ok "//book[author=\"Codd\"]/title";
  ok "//book[author='Codd']";
  ok "/a/@id";
  ok "/a/text()";
  ok "//node()";
  ok "/a/*";
  ok "child::a/descendant::b";
  ok "ancestor::a";
  ok "following-sibling::*";
  ok "..";
  ok "self::a"

let test_parse_errors () =
  let bad s = check s true (Result.is_error (P.parse s)) in
  bad "";
  bad "/";
  bad "/a[";
  bad "/a[]";
  bad "/a]";
  bad "/a[b=]";
  bad "bogus::a";
  bad "/a/b[1";
  bad "/a b";
  bad "/a/b[position()!3]";
  bad "/a/b[last()-]"

let test_parse_print_roundtrip () =
  List.iter
    (fun s ->
      let p = P.parse_exn s in
      let printed = Xsm_xpath.Path_ast.to_string p in
      let p2 = P.parse_exn printed in
      check s true (Xsm_xpath.Path_ast.to_string p2 = printed))
    [ "/a/b/c"; "//b[2]"; "/a//b[last()]"; "/a//b[last()-2]"; "/a/@id";
      "//book[author=\"X\"]/title"; "//b[position()<=3]"; "//b[position()>1]" ]

(* ---------------- evaluation over the store ---------------- *)

let test_eval_basics () =
  let store, dnode = fixture () in
  Alcotest.(check (list string)) "book titles"
    [ "Foundations of Databases"; "An Introduction to Database Systems" ]
    (eval store dnode "/library/book/title");
  check_int "authors anywhere" 6 (List.length (eval store dnode "//author"));
  Alcotest.(check (list string)) "positional"
    [ "An Introduction to Database Systems" ]
    (eval store dnode "/library/book[2]/title");
  Alcotest.(check (list string)) "last()"
    [ "The Complexity of Relational Query Languages" ]
    (eval store dnode "/library/paper[last()]/title");
  Alcotest.(check (list string)) "last()-1"
    [ "A Relational Model for Large Shared Data Banks" ]
    (eval store dnode "/library/paper[last()-1]/title");
  Alcotest.(check (list string)) "position()<=2"
    [ "Abiteboul"; "Hull" ]
    (eval store dnode "/library/book[1]/author[position()<=2]");
  Alcotest.(check (list string)) "position()>1"
    [ "Hull"; "Vianu" ]
    (eval store dnode "/library/book[1]/author[position()>1]");
  Alcotest.(check (list string)) "filter by child value"
    [ "A Relational Model for Large Shared Data Banks";
      "The Complexity of Relational Query Languages" ]
    (eval store dnode "//paper[author=\"Codd\"]/title");
  Alcotest.(check (list string)) "exists filter"
    [ "An Introduction to Database Systems" ]
    (eval store dnode "//book[issue]/title");
  check_int "wildcard" 4 (List.length (eval store dnode "/library/*"));
  Alcotest.(check (list string)) "text()"
    [ "Abiteboul"; "Hull"; "Vianu" ]
    (eval store dnode "/library/book[1]/author/text()")

let test_eval_axes () =
  let store, dnode = fixture () in
  Alcotest.(check (list string)) "parent"
    [ "Addison-Wesley2004" ]
    (eval store dnode "//publisher/..");
  check_int "ancestors of year" 4
    (List.length
       (match E.eval_string store dnode "//year/ancestor::*" with
       | Ok ns -> ns
       | Error e -> Alcotest.fail e)
     |> fun n -> n + 1);
  (* ^ //year has ancestors issue, book, library (3 elements); adding 1 = 4
       keeps the arithmetic explicit *)
  Alcotest.(check (list string)) "following-sibling"
    [ "Hull"; "Vianu" ]
    (eval store dnode "/library/book[1]/author[1]/following-sibling::*");
  Alcotest.(check (list string)) "preceding-sibling of issue"
    [ "An Introduction to Database Systems"; "Date" ]
    (eval store dnode "//issue/preceding-sibling::*" |> List.sort compare)

let test_eval_document_order_dedup () =
  let store, dnode = fixture () in
  (* //title//.. style nonsense can produce duplicates before dedup *)
  match E.eval_string store dnode "//author/ancestor-or-self::*/ancestor::library" with
  | Ok ns -> check_int "dedup to one library" 1 (List.length ns)
  | Error e -> Alcotest.fail e

let test_eval_attributes () =
  let store = Store.create () in
  let doc =
    Xsm_xml.Tree.document
      (Xsm_xml.Tree.elem "r"
         ~children:
           [
             Xsm_xml.Tree.element
               (Xsm_xml.Tree.elem "item" ~attrs:[ Xsm_xml.Tree.attr "id" "a" ]);
             Xsm_xml.Tree.element
               (Xsm_xml.Tree.elem "item" ~attrs:[ Xsm_xml.Tree.attr "id" "b" ]);
           ])
  in
  let dnode = Convert.load store doc in
  Alcotest.(check (list string)) "@id" [ "a"; "b" ] (eval store dnode "/r/item/@id");
  Alcotest.(check (list string)) "filter on attribute"
    [ "b" ]
    (eval store dnode "/r/item[@id=\"b\"]/@id")

(* ---------------- storage backend agreement ---------------- *)

let queries =
  [
    "/library/book/title"; "//author"; "/library/book[2]/title"; "//paper[author=\"Codd\"]/title";
    "/library/*"; "//book[issue]/title"; "//year"; "/library/paper[last()]/title";
    "//issue/publisher"; "/library/book[1]/author/text()";
    "/library/paper[last()-1]/title"; "/library/book[1]/author[position()<=2]";
    "/library/book[1]/author[position()>1]";
  ]

let test_backend_agreement () =
  let store, dnode = fixture () in
  let bs = B.of_store ~block_capacity:4 store dnode in
  let rootd = B.root bs in
  List.iter
    (fun q ->
      let a = eval store dnode q in
      match ES.eval_string bs rootd q with
      | Ok ds -> Alcotest.(check (list string)) q a (List.map (B.string_value bs) ds)
      | Error e -> Alcotest.failf "%s: %s" q e)
    queries

let test_backend_agreement_random () =
  let rng = Xsm_schema.Generator.rng 2024 in
  for _ = 1 to 5 do
    let schema = Xsm_schema.Generator.random_schema ~max_depth:3 rng in
    let doc = Xsm_schema.Generator.instance rng schema in
    let store = Store.create () in
    let dnode = Convert.load store doc in
    let bs = B.of_store store dnode in
    let rootd = B.root bs in
    List.iter
      (fun q ->
        match E.eval_string store dnode q, ES.eval_string bs rootd q with
        | Ok a, Ok b ->
          Alcotest.(check (list string)) q
            (E.strings store a)
            (List.map (B.string_value bs) b)
        | Error _, Error _ -> ()
        | _ -> Alcotest.failf "one backend failed on %s" q)
      [ "//*"; "//text()"; "/root/*" ]
  done

(* ---------------- schema-driven ---------------- *)

let test_schema_driven_agreement () =
  let store, dnode = fixture () in
  let bs = B.of_store ~block_capacity:4 store dnode in
  List.iter
    (fun q ->
      match SD.eval_string bs q with
      | Ok ds ->
        Alcotest.(check (list string)) q (eval store dnode q)
          (List.map (B.string_value bs) ds)
      | Error e -> Alcotest.failf "%s: %s" q e)
    [ "/library/book/title"; "//author"; "//title"; "/library/paper/author"; "//issue/year" ]

let test_schema_driven_rejects_predicates () =
  let store, dnode = fixture () in
  let bs = B.of_store store dnode in
  ignore (store, dnode);
  check "predicate unsupported" true (Result.is_error (SD.eval_string bs "/library/book[2]"));
  check "relative unsupported" true (Result.is_error (SD.eval_string bs "book/title"));
  check "supported flag" true
    (SD.supported (P.parse_exn "/library/book/title")
    && not (SD.supported (P.parse_exn "/library/book[1]")))

let test_schema_driven_document_order () =
  let store, dnode = fixture () in
  let bs = B.of_store ~block_capacity:2 store dnode in
  match SD.eval_string bs "//title" with
  | Ok ds ->
    let nids = List.map B.nid ds in
    let rec increasing = function
      | a :: (b :: _ as rest) ->
        Xsm_numbering.Sedna_label.compare a b < 0 && increasing rest
      | [ _ ] | [] -> true
    in
    check "merged in document order" true (increasing nids)
  | Error e -> Alcotest.fail e

let suite =
  [
    ( "xpath.parser",
      [
        Alcotest.test_case "shapes" `Quick test_parse_shapes;
        Alcotest.test_case "errors" `Quick test_parse_errors;
        Alcotest.test_case "print roundtrip" `Quick test_parse_print_roundtrip;
      ] );
    ( "xpath.eval",
      [
        Alcotest.test_case "basics" `Quick test_eval_basics;
        Alcotest.test_case "axes" `Quick test_eval_axes;
        Alcotest.test_case "dedup + order" `Quick test_eval_document_order_dedup;
        Alcotest.test_case "attributes" `Quick test_eval_attributes;
      ] );
    ( "xpath.backends",
      [
        Alcotest.test_case "agreement" `Quick test_backend_agreement;
        Alcotest.test_case "agreement (random)" `Quick test_backend_agreement_random;
      ] );
    ( "xpath.schema-driven",
      [
        Alcotest.test_case "agreement" `Quick test_schema_driven_agreement;
        Alcotest.test_case "unsupported shapes" `Quick test_schema_driven_rejects_predicates;
        Alcotest.test_case "document order" `Quick test_schema_driven_document_order;
      ] );
  ]
