(* The durability subsystem:

   - snapshot encode/decode round-trips to §8 content-equality, on the
     library sample and (as a qcheck law) over generated corpora,
     labels included,
   - WAL write/read round-trips; torn tails (cut headers, cut
     payloads, CRC flips) are detected, truncated and never replayed,
   - replaying every prefix of a random update sequence equals direct
     application of that prefix,
   - fault injection: for every crash point (clean boundary cut and
     torn record alike), recovery restores exactly the state of the
     longest fully-written prefix, and recovered labels pass the
     ground-truth check,
   - journal cursors: independent consumers each see every entry. *)

module Store = Xsm_xdm.Store
module Convert = Xsm_xdm.Convert
module Update = Xsm_schema.Update
module Journal = Xsm_schema.Update.Journal
module Gen = Xsm_schema.Generator
module Snapshot = Xsm_persist.Snapshot
module Wal = Xsm_persist.Wal
module Recovery = Xsm_persist.Recovery
module Labeler = Xsm_numbering.Labeler
module Tree = Xsm_xml.Tree
module Name = Xsm_xml.Name
module Q = QCheck

let ok = function
  | Ok v -> v
  | Error e -> Alcotest.failf "unexpected error: %s" e

(* the WAL and recovery APIs carry structured errors *)
let ok_wal = function
  | Ok v -> v
  | Error e -> Alcotest.failf "unexpected error: %s" (Wal.error_message e)

let ok_rec = function
  | Ok v -> v
  | Error e -> Alcotest.failf "unexpected error: %s" (Recovery.error_message e)

let tmp suffix =
  let path = Filename.temp_file "xsm_persist" suffix in
  Sys.remove path;
  (* the WAL writer distinguishes fresh from existing files *)
  path

let cleanup paths = List.iter (fun p -> if Sys.file_exists p then Sys.remove p) paths

let library () =
  let doc = Xsm_schema.Samples.library_document () in
  let store = Store.create () in
  let root = Convert.load store doc in
  (store, root)

let rec fold_nodes store f acc n =
  let acc = f acc n in
  let acc = List.fold_left (fold_nodes store f) acc (Store.attributes store n) in
  List.fold_left (fold_nodes store f) acc (Store.children store n)

let nodes_of_kind store root k =
  fold_nodes store
    (fun acc n -> if Store.Kind.equal (Store.kind store n) k then n :: acc else acc)
    [] root
  |> List.rev

let state store root = Convert.to_document store root
let same_state a b = Tree.equal_content a b

(* ------------------------------------------------------------------ *)
(* Snapshot                                                            *)

let test_snapshot_roundtrip () =
  let store, root = library () in
  let bytes = ok (Snapshot.encode store root) in
  let store', root', labels', meta = ok (Snapshot.decode bytes) in
  Alcotest.(check int) "node count" (Store.subtree_size store root) meta.Snapshot.node_count;
  Alcotest.(check bool) "no labels" true (labels' = None);
  Alcotest.(check bool) "content-equal after decode (encode X) — §8 on disk" true
    (same_state (state store root) (state store' root'))

let test_snapshot_roundtrip_labels () =
  let store, root = library () in
  let labels = Labeler.label_tree store root in
  let bytes = ok (Snapshot.encode ~schema_ref:"samples/library.xsd" ~labels store root) in
  let store', root', labels', meta = ok (Snapshot.decode bytes) in
  Alcotest.(check bool) "labelled" true meta.Snapshot.labelled;
  Alcotest.(check (option string)) "schema ref" (Some "samples/library.xsd")
    meta.Snapshot.schema_ref;
  let labels' = match labels' with Some l -> l | None -> Alcotest.fail "labels lost" in
  Alcotest.(check int) "label count" (Labeler.label_count labels) (Labeler.label_count labels');
  let raw t =
    List.map (fun (_, l) -> Xsm_numbering.Sedna_label.to_raw l) (Labeler.bindings t)
  in
  Alcotest.(check (list string)) "labels byte-identical in document order" (raw labels)
    (raw labels');
  Alcotest.(check bool) "restored labels pass the ground-truth check" true
    (Labeler.check_against_tree store' root' labels')

let test_snapshot_rejects_corruption () =
  let store, root = library () in
  let bytes = ok (Snapshot.encode store root) in
  let flip s i =
    let b = Bytes.of_string s in
    Bytes.set b i (Char.chr (Char.code (Bytes.get b i) lxor 0x5a));
    Bytes.to_string b
  in
  (match Snapshot.decode (flip bytes (String.length bytes / 2)) with
  | Error _ -> ()
  | Ok _ -> Alcotest.fail "bit flip in the body must be rejected");
  (match Snapshot.decode (flip bytes 0) with
  | Error _ -> ()
  | Ok _ -> Alcotest.fail "bad magic must be rejected");
  match Snapshot.decode (String.sub bytes 0 (String.length bytes - 3)) with
  | Error _ -> ()
  | Ok _ -> Alcotest.fail "truncated snapshot must be rejected"

let test_snapshot_save_load () =
  let store, root = library () in
  let labels = Labeler.label_tree store root in
  let path = tmp ".snap" in
  let meta = ok (Snapshot.save ~labels ~path store root) in
  Alcotest.(check bool) "labelled meta" true meta.Snapshot.labelled;
  let store', root', labels', _ = ok (Snapshot.load ~path) in
  Alcotest.(check bool) "disk round-trip content-equal" true
    (same_state (state store root) (state store' root'));
  Alcotest.(check bool) "labels survive the disk" true (labels' <> None);
  cleanup [ path ]

let snapshot_roundtrip_law seed =
  let rng = Gen.rng seed in
  let schema = Gen.random_schema ~max_depth:3 rng in
  let doc = Gen.instance rng schema in
  let store = Store.create () in
  let root = Convert.load store doc in
  let labels = Labeler.label_tree store root in
  let store', root', labels', meta = ok (Snapshot.decode (ok (Snapshot.encode ~labels store root))) in
  meta.Snapshot.node_count = Store.subtree_size store root
  && same_state (state store root) (state store' root')
  && match labels' with
     | None -> false
     | Some l -> Labeler.label_count l = Labeler.label_count labels

(* ------------------------------------------------------------------ *)
(* A deterministic op fixture over the library sample.  Each op is a
   thunk computed against the *current* state, so the same list drives
   both the direct run and the logged run. *)

let doc_elem store root = List.hd (Store.children store root)

let ops_fixture store root =
  [
    (fun () ->
      Update.Insert_element
        {
          parent = doc_elem store root;
          before = None;
          tree =
            Tree.elem "book"
              ~attrs:[ Tree.attr "id" "b9" ]
              ~children:
                [ Tree.element (Tree.elem "title" ~children:[ Tree.text "Durability" ]) ];
        });
    (fun () ->
      let lib = doc_elem store root in
      Update.Set_attribute
        { element = List.hd (Store.children store lib); name = Name.local "category";
          value = "classic" });
    (fun () ->
      Update.Replace_content
        { node = List.hd (nodes_of_kind store root Store.Kind.Text); value = "Retitled" });
    (fun () ->
      Update.Insert_text { parent = doc_elem store root; before = None; text = "coda" });
    (fun () ->
      let lib = doc_elem store root in
      Update.Delete (List.nth (Store.children store lib) 1));
    (fun () ->
      Update.Replace_content
        { node = List.hd (nodes_of_kind store root Store.Kind.Attribute); value = "flipped" });
  ]

let n_fixture = 6

(* expected.(k) = the document tree after the first k fixture ops *)
let expected_prefixes () =
  let store, root = library () in
  let trees = Array.make (n_fixture + 1) (state store root) in
  List.iteri
    (fun i mk ->
      ignore (ok (Update.apply store (mk ())));
      trees.(i + 1) <- state store root)
    (ops_fixture store root);
  trees

(* ------------------------------------------------------------------ *)
(* WAL                                                                 *)

let write_fixture_wal ?crash ?(labels = false) wal_path =
  let store, root = library () in
  let labeler = if labels then Some (Labeler.label_tree store root) else None in
  let w = ok_wal (Wal.Writer.create ?crash wal_path) in
  let applied = ref 0 in
  (try
     List.iter
       (fun mk ->
         let op = mk () in
         Wal.Writer.append w (ok (Wal.op_of_update store ~root op));
         ignore (ok (Update.apply store op));
         incr applied)
       (ops_fixture store root);
     Wal.Writer.close w
   with Wal.Crashed -> ());
  (store, root, labeler, !applied)

let test_wal_roundtrip () =
  let wal = tmp ".wal" in
  let _, _, _, applied = write_fixture_wal wal in
  Alcotest.(check int) "all ops applied" n_fixture applied;
  let r = ok_wal (Wal.read wal) in
  Alcotest.(check int) "all records back" n_fixture (List.length r.Wal.records);
  Alcotest.(check bool) "clean log" true (r.Wal.torn_at = None);
  Alcotest.(check int) "clean log: everything synced" n_fixture r.Wal.synced_prefix;
  Alcotest.(check int) "nothing to truncate" 0 (ok_wal (Wal.truncate_torn wal));
  cleanup [ wal ]

let append_bytes path s =
  let oc = open_out_gen [ Open_append; Open_binary ] 0o644 path in
  output_string oc s;
  close_out oc

let test_wal_torn_tail () =
  let wal = tmp ".wal" in
  let _ = write_fixture_wal wal in
  let clean_size = (Unix.stat wal).Unix.st_size in
  (* a cut-short header *)
  append_bytes wal "XYZ";
  let r = ok_wal (Wal.read wal) in
  Alcotest.(check int) "records unaffected" n_fixture (List.length r.Wal.records);
  (match r.Wal.torn_at with
  | Some (Wal.Torn_header _) -> ()
  | _ -> Alcotest.fail "expected a torn header");
  Alcotest.(check int) "torn log: only sync-points vouch" 0 r.Wal.synced_prefix;
  Alcotest.(check int) "3 bytes dropped" 3 (ok_wal (Wal.truncate_torn wal));
  Alcotest.(check int) "file repaired" clean_size (Unix.stat wal).Unix.st_size;
  (* a CRC flip inside the last record's payload *)
  let contents =
    let ic = open_in_bin wal in
    let s = really_input_string ic (in_channel_length ic) in
    close_in ic;
    s
  in
  let b = Bytes.of_string contents in
  Bytes.set b (Bytes.length b - 1) '\xff';
  let ocf = open_out_bin wal in
  output_bytes ocf b;
  close_out ocf;
  let r = ok_wal (Wal.read wal) in
  Alcotest.(check int) "last record rejected" (n_fixture - 1) (List.length r.Wal.records);
  (match r.Wal.torn_at with
  | Some (Wal.Torn_crc _) -> ()
  | _ -> Alcotest.fail "expected a CRC mismatch");
  Alcotest.(check bool) "dropped something" true (ok_wal (Wal.truncate_torn wal) > 0);
  cleanup [ wal ]

let test_wal_sync_points () =
  let wal = tmp ".wal" in
  let store, root = library () in
  let w = ok_wal (Wal.Writer.create wal) in
  let log mk =
    let op = mk () in
    Wal.Writer.append w (ok (Wal.op_of_update store ~root op));
    ignore (ok (Update.apply store op))
  in
  (match ops_fixture store root with
  | o1 :: o2 :: o3 :: _ ->
    log o1;
    Wal.Writer.sync w;
    log o2;
    log o3
  | _ -> assert false);
  Wal.Writer.close w;
  append_bytes wal "torn!";
  let r = ok_wal (Wal.read wal) in
  Alcotest.(check int) "3 ops + 1 marker" 4 (List.length r.Wal.records);
  Alcotest.(check int) "only the op before the marker is vouched for" 1 r.Wal.synced_prefix;
  cleanup [ wal ]

let test_wal_replay_matches_direct () =
  let wal = tmp ".wal" in
  let direct_store, direct_root, _, _ = write_fixture_wal wal in
  let store, root = library () in
  let r = ok_wal (Wal.read wal) in
  List.iter
    (function
      | Wal.Sync_point -> ()
      | Wal.Op op -> ignore (ok (Wal.replay_op store ~root op)))
    r.Wal.records;
  Alcotest.(check bool) "replayed state = directly updated state" true
    (same_state (state direct_store direct_root) (state store root));
  cleanup [ wal ]

(* ------------------------------------------------------------------ *)
(* Fault injection: every crash point, clean cut and torn record       *)

let test_crash_recovery_all_points () =
  let expected = expected_prefixes () in
  List.iter
    (fun partial_bytes ->
      for after_records = 0 to n_fixture - 1 do
        let snap = tmp ".snap" and wal = tmp ".wal" in
        let ctx = Printf.sprintf "crash@%d partial=%d" after_records partial_bytes in
        (* snapshot the initial state, then run into the crash *)
        (let store, root = library () in
         let labels = Labeler.label_tree store root in
         ignore (ok (Snapshot.save ~labels ~path:snap store root)));
        let _, _, _, applied =
          write_fixture_wal ~crash:{ Wal.after_records; partial_bytes } wal
        in
        Alcotest.(check int) (ctx ^ ": writer died at the crash point") after_records applied;
        let rstore, rroot, rlabels, stats = ok_rec (Recovery.recover ~snapshot:snap ~wal ()) in
        Alcotest.(check int) (ctx ^ ": replayed = fully-written prefix") after_records
          stats.Recovery.replayed;
        Alcotest.(check bool) (ctx ^ ": recovered ≡_c longest fully-written prefix") true
          (same_state expected.(after_records) (state rstore rroot));
        if partial_bytes > 0 then
          Alcotest.(check bool) (ctx ^ ": torn tail truncated, never replayed") true
            (stats.Recovery.torn_bytes > 0 && stats.Recovery.truncated);
        (match rlabels with
        | None -> Alcotest.fail (ctx ^ ": labels lost in recovery")
        | Some l ->
          Alcotest.(check int)
            (ctx ^ ": every recovered node labelled")
            (Store.subtree_size rstore rroot) (Labeler.label_count l);
          Alcotest.(check bool)
            (ctx ^ ": recovered labels pass the ground-truth check")
            true
            (Labeler.check_against_tree rstore rroot l));
        (* recovery truncated the WAL: appending resumes cleanly *)
        let w = ok_wal (Wal.Writer.create wal) in
        Wal.Writer.close w;
        let r = ok_wal (Wal.read wal) in
        Alcotest.(check bool) (ctx ^ ": repaired log is clean") true (r.Wal.torn_at = None);
        cleanup [ snap; wal ]
      done)
    [ 0; 9 ]

(* ------------------------------------------------------------------ *)
(* Random update sequences: WAL replay after every prefix equals
   direct application (qcheck law).                                    *)

let random_op rng store root =
  let elements = nodes_of_kind store root Store.Kind.Element in
  let texts = nodes_of_kind store root Store.Kind.Text in
  let attrs = nodes_of_kind store root Store.Kind.Attribute in
  let pick xs = List.nth xs (Gen.int rng (List.length xs)) in
  let fresh_element () =
    Tree.elem
      (Printf.sprintf "n%d" (Gen.int rng 5))
      ~attrs:[ Tree.attr "a" (Printf.sprintf "v%d" (Gen.int rng 10)) ]
      ~children:[ Tree.text (Printf.sprintf "t%d" (Gen.int rng 10)) ]
  in
  let insert () =
    Update.Insert_element { parent = pick elements; before = None; tree = fresh_element () }
  in
  (* deletable: element or text whose parent is an element (keep the
     document's root element in place) *)
  let deletable =
    List.filter
      (fun n ->
        match Store.parent store n with
        | Some p -> Store.Kind.equal (Store.kind store p) Store.Kind.Element
        | None -> false)
      (elements @ texts)
  in
  match Gen.int rng 5 with
  | 0 -> insert ()
  | 1 ->
    Update.Insert_text
      { parent = pick elements; before = None; text = Printf.sprintf "x%d" (Gen.int rng 10) }
  | 2 when deletable <> [] -> Update.Delete (pick deletable)
  | 3 when texts @ attrs <> [] ->
    Update.Replace_content
      { node = pick (texts @ attrs); value = Printf.sprintf "r%d" (Gen.int rng 10) }
  | 4 ->
    Update.Set_attribute
      {
        element = pick elements;
        name = Name.local (Printf.sprintf "a%d" (Gen.int rng 3));
        value = Printf.sprintf "w%d" (Gen.int rng 10);
      }
  | _ -> insert ()

let wal_prefix_law seed =
  let rng = Gen.rng seed in
  let schema = Gen.random_schema ~max_depth:3 rng in
  let doc = Gen.instance rng schema in
  let wal = tmp ".wal" in
  (* the logged direct run, recording the state after every op *)
  let store = Store.create () in
  let root = Convert.load store doc in
  let w = ok_wal (Wal.Writer.create wal) in
  let n_ops = 2 + Gen.int rng 7 in
  let expected =
    Array.init n_ops (fun _ ->
        let op = random_op rng store root in
        Wal.Writer.append w (ok (Wal.op_of_update store ~root op));
        ignore (ok (Update.apply store op));
        state store root)
  in
  Wal.Writer.close w;
  (* one replay pass over a fresh load checks every prefix *)
  let store' = Store.create () in
  let root' = Convert.load store' doc in
  let r = ok_wal (Wal.read wal) in
  let ops = List.filter_map (function Wal.Op o -> Some o | Wal.Sync_point -> None) r.Wal.records in
  let all_prefixes_match =
    List.length ops = n_ops
    && List.for_all2
         (fun op want ->
           ignore (ok (Wal.replay_op store' ~root:root' op));
           same_state want (state store' root'))
         ops (Array.to_list expected)
  in
  cleanup [ wal ];
  all_prefixes_match

(* ------------------------------------------------------------------ *)
(* Journal cursors                                                     *)

let test_journal_cursors () =
  let store, root = library () in
  let j = Journal.create () in
  let c1 = Journal.subscribe j in
  let apply mk = ignore (ok (Update.apply ~journal:j store (mk ()))) in
  let ops = ops_fixture store root in
  apply (List.nth ops 0);
  apply (List.nth ops 1);
  let c2 = Journal.subscribe j in
  Alcotest.(check int) "c1 sees both entries" 2 (Journal.pending j c1);
  Alcotest.(check int) "c2 starts at the oldest retained entry" 2 (Journal.pending j c2);
  Alcotest.(check int) "c1 reads what it saw" 2 (List.length (Journal.read j c1));
  Alcotest.(check int) "c1 drained" 0 (Journal.pending j c1);
  Alcotest.(check int) "c2 unaffected by c1's read" 2 (Journal.pending j c2);
  Alcotest.(check int) "peek does not advance" 2 (List.length (Journal.peek j c2));
  Alcotest.(check int) "still pending after peek" 2 (Journal.pending j c2);
  ignore (Journal.read j c2);
  apply (List.nth ops 2);
  Alcotest.(check int) "both see the new entry" 1 (Journal.pending j c1);
  Alcotest.(check int) "both see the new entry (c2)" 1 (Journal.pending j c2);
  Journal.unsubscribe j c2;
  Alcotest.(check int) "an unsubscribed cursor reads nothing" 0 (Journal.pending j c2);
  Alcotest.(check int) "survivors keep their view" 1 (List.length (Journal.read j c1));
  Alcotest.(check int) "lifetime total" 3 (Journal.total j)

let test_journal_legacy_drain () =
  let store, root = library () in
  let j = Journal.create () in
  let apply mk = ignore (ok (Update.apply ~journal:j store (mk ()))) in
  let ops = ops_fixture store root in
  apply (List.nth ops 0);
  apply (List.nth ops 1);
  Alcotest.(check int) "legacy length" 2 (Journal.length j);
  Alcotest.(check int) "legacy drain" 2 (List.length (Journal.drain j));
  Alcotest.(check int) "drain empties" 0 (Journal.length j);
  apply (List.nth ops 2);
  Alcotest.(check int) "new entries show up" 1 (Journal.length j)

(* ------------------------------------------------------------------ *)

let to_alco ?(count = 60) name law =
  QCheck_alcotest.to_alcotest
    (Q.Test.make ~count ~name (Q.make ~print:string_of_int Q.Gen.(int_bound 1_000_000)) law)

let test_wal_rejects_foreign_file () =
  (* a file that is not a WAL is corrupt input with its own error
     constructor — it once surfaced as a bare [Failure] that crashed
     the CLI instead of mapping to the corrupt-input exit code *)
  let path = tmp ".wal" in
  let oc = open_out_bin path in
  output_string oc "not a wal at all";
  close_out oc;
  let contains ~needle hay =
    let n = String.length needle and h = String.length hay in
    let rec go i = i + n <= h && (String.sub hay i n = needle || go (i + 1)) in
    go 0
  in
  (match Wal.read path with
  | Error (Wal.Not_a_wal p) ->
    Alcotest.(check string) "error names the file" path p;
    Alcotest.(check bool) "message says so" true
      (contains ~needle:"not a WAL file" (Wal.error_message (Wal.Not_a_wal p)))
  | Error e -> Alcotest.failf "wrong error: %s" (Wal.error_message e)
  | Ok _ -> Alcotest.fail "foreign file read as a WAL");
  (match Wal.Writer.create path with
  | Error (Wal.Not_a_wal _) -> ()
  | Error e -> Alcotest.failf "wrong error: %s" (Wal.error_message e)
  | Ok w ->
    Wal.Writer.close w;
    Alcotest.fail "foreign file opened for append");
  (* recovery maps it to its corrupt-input constructor, not [Failed] *)
  let snap = tmp ".snap" in
  let store, root = library () in
  ignore (ok (Snapshot.save ~path:snap store root));
  (match Recovery.recover ~snapshot:snap ~wal:path () with
  | Error (Recovery.Corrupt_wal _) -> ()
  | Error e -> Alcotest.failf "wrong error: %s" (Recovery.error_message e)
  | Ok _ -> Alcotest.fail "recovered through a corrupt WAL");
  cleanup [ path; snap ]

let test_directory_fsync () =
  (* the rename-into-place and WAL-creation paths must harden the
     parent directory entry, in a directory created this test run (a
     cold entry is exactly what a crash would lose); [fsync_parent]
     itself must swallow environment refusals rather than fail a save *)
  let dir =
    Filename.concat (Filename.get_temp_dir_name ())
      (Printf.sprintf "xsm-fsdir-%d" (Unix.getpid ()))
  in
  (try Unix.mkdir dir 0o700 with Unix.Unix_error (Unix.EEXIST, _, _) -> ());
  let store, root = library () in
  let snap = Filename.concat dir "state.snap" in
  ignore (ok (Snapshot.save ~path:snap store root));
  let _, root2, _, _ = ok (Snapshot.load ~path:snap) in
  Alcotest.(check bool) "snapshot readable after hardened rename" true (Store.node_id root2 >= 0);
  let wal_path = Filename.concat dir "state.wal" in
  (match Wal.Writer.create wal_path with
  | Ok w ->
    Wal.Writer.sync w;
    Wal.Writer.close w
  | Error e -> Alcotest.failf "fresh wal: %s" (Wal.error_message e));
  Alcotest.(check bool) "fresh wal durable" true (Sys.file_exists wal_path);
  Xsm_persist.Fsutil.fsync_parent (Filename.concat dir "nonexistent");
  Xsm_persist.Fsutil.fsync_dir "/no/such/directory" (* must not raise *);
  cleanup [ snap; wal_path ];
  try Unix.rmdir dir with Unix.Unix_error _ -> ()

let suite =
  [
    ( "persist",
      [
        Alcotest.test_case "directory entries fsynced" `Quick test_directory_fsync;
        Alcotest.test_case "snapshot round-trip =_c (in memory)" `Quick test_snapshot_roundtrip;
        Alcotest.test_case "snapshot round-trip with labels" `Quick test_snapshot_roundtrip_labels;
        Alcotest.test_case "snapshot rejects corruption" `Quick test_snapshot_rejects_corruption;
        Alcotest.test_case "snapshot save/load on disk" `Quick test_snapshot_save_load;
        Alcotest.test_case "wal write/read round-trip" `Quick test_wal_roundtrip;
        Alcotest.test_case "wal torn tails detected and truncated" `Quick test_wal_torn_tail;
        Alcotest.test_case "wal rejects a foreign file" `Quick test_wal_rejects_foreign_file;
        Alcotest.test_case "wal sync points bound the vouched prefix" `Quick test_wal_sync_points;
        Alcotest.test_case "wal replay = direct application" `Quick test_wal_replay_matches_direct;
        Alcotest.test_case "crash recovery at every crash point" `Quick
          test_crash_recovery_all_points;
        Alcotest.test_case "journal: independent cursors" `Quick test_journal_cursors;
        Alcotest.test_case "journal: legacy drain view" `Quick test_journal_legacy_drain;
        to_alco "snapshot round-trip law (generated corpora)" snapshot_roundtrip_law;
        to_alco ~count:40 "wal prefix-replay law (random update sequences)" wal_prefix_law;
      ] );
  ]
