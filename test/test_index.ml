(* Tests for the index subsystem: the extent join algebra, typed value
   indexes, and — the contract that matters — indexed evaluation
   returning exactly the node list (same nodes, document order, no
   duplicates) the naive evaluator returns, on fixed fixtures, on
   random generated documents, and after random updates. *)

module Store = Xsm_xdm.Store
module Convert = Xsm_xdm.Convert
module Tree = Xsm_xml.Tree
module Name = Xsm_xml.Name
module Label = Xsm_numbering.Sedna_label
module B = Xsm_storage.Block_storage
module E = Xsm_xpath.Eval.Over_store
module ES = Xsm_xpath.Eval.Over_storage
module P = Xsm_xpath.Path_parser
module Pl = Xsm_xpath.Planner.Over_store
module PlS = Xsm_xpath.Planner.Over_storage
module Extent = Xsm_index.Extent
module VI = Xsm_index.Value_index
module Gen = Xsm_schema.Generator
module Update = Xsm_schema.Update

let check = Alcotest.(check bool)
let check_int = Alcotest.(check int)
let check_nodes = Alcotest.(check (list int))

let check_store_nodes msg a b =
  check_nodes msg (List.map Store.node_id a) (List.map Store.node_id b)

let fixture () =
  let store = Store.create () in
  let dnode = Convert.load store Xsm_schema.Samples.example8_document in
  (store, dnode)

(* ---------------- the extent join algebra ---------------- *)

let extent_of labels =
  Extent.of_rev_list (List.rev_map (fun (l, n) -> { Extent.label = l; node = n }) labels)

let test_extent_joins () =
  (* three siblings under the root, each with two children *)
  let sibs = Label.assign_children Label.root 3 in
  let kids l = Label.assign_children l 2 in
  let s1, s2, s3 =
    match sibs with [ a; b; c ] -> (a, b, c) | _ -> Alcotest.fail "assign_children"
  in
  let parents = extent_of [ (s1, 1); (s3, 3) ] in
  let all_kids =
    extent_of
      (List.concat_map
         (fun (s, i) -> List.mapi (fun j l -> (l, (10 * i) + j)) (kids s))
         [ (s1, 1); (s2, 2); (s3, 3) ])
  in
  check_nodes "parent join keeps children of restricted parents"
    [ 10; 11; 30; 31 ]
    (Extent.nodes (Extent.restrict_by_parent ~among:parents all_kids));
  check_nodes "ancestor join agrees on depth-2 descendants"
    [ 10; 11; 30; 31 ]
    (Extent.nodes (Extent.restrict_by_ancestor ~among:parents all_kids));
  check_nodes "semijoin keeps parents that contain a target"
    [ 1 ]
    (Extent.nodes
       (Extent.semijoin_containing
          ~targets:[ extent_of [ (List.hd (kids s1), 10) ] ]
          parents));
  let some_kids = extent_of [ (List.nth (kids s1) 1, 11); (List.hd (kids s2), 20) ] in
  check_nodes "intersection by label" [ 11 ]
    (Extent.nodes (Extent.inter all_kids some_kids) |> List.filter (fun n -> n = 11));
  check_int "merge dedups by label" (Extent.length all_kids)
    (Extent.length (Extent.merge [ all_kids; some_kids; Extent.empty ]))

(* ---------------- typed value indexes ---------------- *)

let test_value_index_probes () =
  (* six owner labels in document order; target = owner (leaf values) *)
  let labels = Array.of_list (Label.assign_children Label.root 6) in
  let pos_of =
    let assoc =
      Array.to_list (Array.mapi (fun i l -> (Label.to_raw l, i)) labels)
    in
    fun l -> List.assoc (Label.to_raw l) assoc
  in
  let vi = VI.create () in
  let set i s =
    VI.set_target vi ~target:labels.(i) ~owner:labels.(i) [ (VI.Key.of_string s, s) ]
  in
  set 0 "10";
  set 1 "2";
  set 2 "30";
  set 3 "abc";
  set 4 "b";
  set 5 "10";
  let eq s = List.map pos_of (VI.eq vi s) in
  let range op probe = List.map pos_of (VI.range vi op (VI.Key.of_string probe)) in
  Alcotest.(check (list int)) "eq on exact string" [ 0; 5 ] (eq "10");
  Alcotest.(check (list int)) "eq misses" [] (eq "10.5");
  Alcotest.(check (list int)) "numeric range < 10" [ 1 ] (range VI.Lt "10");
  Alcotest.(check (list int)) "numeric range <= 10" [ 0; 1; 5 ] (range VI.Le "10");
  Alcotest.(check (list int)) "numeric range > 2 stays numeric" [ 0; 2; 5 ] (range VI.Gt "2");
  Alcotest.(check (list int)) "text range >= b stays textual" [ 4 ] (range VI.Ge "b");
  check "numbers order before text" true
    (VI.Key.compare (VI.Key.of_string "999") (VI.Key.of_string "a") < 0);
  check "decimal key is exact" true
    (VI.Key.compare (VI.Key.of_value (Xsm_datatypes.Value.Decimal (Xsm_datatypes.Decimal.of_int 10)))
       (VI.Key.of_string "10.0")
    = 0);
  (* keyed maintenance: replacing and removing a target's entries *)
  check_int "six entries" 6 (VI.size vi);
  set 5 "99";
  Alcotest.(check (list int)) "replaced target left the old key" [ 0 ] (eq "10");
  Alcotest.(check (list int)) "and answers under the new key" [ 5 ] (eq "99");
  VI.remove_target vi labels.(1);
  Alcotest.(check (list int)) "removed target no longer answers" [] (eq "2");
  check_int "five entries left" 5 (VI.size vi);
  check_int "five targets left" 5 (VI.target_count vi)

(* ---------------- parser: comparison predicates ---------------- *)

let test_parse_comparisons () =
  let ok s = check s true (Result.is_ok (P.parse s)) in
  let bad s = check s true (Result.is_error (P.parse s)) in
  ok "//book[price<30]";
  ok "//book[price <= 30.5]/title";
  ok "//book[price > \"x\"]";
  ok "//book[issue/year >= 2000]";
  ok "/r/item[@id>'a']";
  ok "//book[price<-3]";
  bad "/a[b<]";
  bad "/a[<3]";
  (* printing round-trips through the parser *)
  List.iter
    (fun s ->
      let printed = Xsm_xpath.Path_ast.to_string (P.parse_exn s) in
      check s true (Xsm_xpath.Path_ast.to_string (P.parse_exn printed) = printed))
    [ "//book[price<30]"; "//book[issue/year>=2000]/title"; "/r/item[@id>\"a\"]" ]

(* ---------------- planner vs naive evaluator ---------------- *)

let indexed_queries =
  [
    "/library/book/title";
    "//author";
    "/library/*";
    "//text()";
    "//book[issue]/title";
    "//paper[author=\"Codd\"]/title";
    "/library//year";
    "//issue/year";
    "/library/book/author/text()";
    "/library/descendant::year";
    "/library/descendant-or-self::*";
    "//book[issue/year>=2000]/title";
    "//book[issue/year<2000]/title";
    "//paper[title>\"S\"]/author";
    "//book[issue/publisher]";
  ]

let fallback_queries =
  [
    "/library/book[2]/title";
    "/library/paper[last()]/title";
    "/library/paper[last()-1]/title";
    "/library/book[1]/author[position()<=2]";
    "//publisher/..";
    "//year/ancestor::*";
    "/library/book[1]/author[1]/following-sibling::*";
    "book/title";
  ]

let test_planner_agreement_store () =
  let store, dnode = fixture () in
  let planner = Pl.create store dnode in
  List.iter
    (fun q ->
      let naive =
        match E.eval_string store dnode q with Ok ns -> ns | Error e -> Alcotest.fail e
      in
      match Pl.eval_string planner q with
      | Ok ns -> check_store_nodes q naive ns
      | Error e -> Alcotest.failf "%s: %s" q e)
    (indexed_queries @ fallback_queries)

let test_planner_uses_index () =
  let store, dnode = fixture () in
  let planner = Pl.create store dnode in
  List.iter
    (fun q -> check ("index: " ^ q) true (Pl.uses_index planner (P.parse_exn q)))
    indexed_queries;
  List.iter
    (fun q -> check ("fallback: " ^ q) false (Pl.uses_index planner (P.parse_exn q)))
    fallback_queries;
  (* one (path, relative-path) pair builds exactly one value index,
     reused across probes with different literals *)
  let fresh = Pl.create store dnode in
  check_int "no value indexes yet" 0 (Pl.value_index_count fresh);
  ignore (Pl.eval_string fresh "//paper[author=\"Codd\"]/title");
  ignore (Pl.eval_string fresh "//paper[author=\"Vardi\"]/title");
  ignore (Pl.eval_string fresh "//paper[author=\"Codd\"]");
  check_int "value index cache reused" 1 (Pl.value_index_count fresh);
  Pl.invalidate fresh;
  ignore (Pl.eval_string fresh "//author");
  check_int "refresh drops value indexes" 0 (Pl.value_index_count fresh)

let test_planner_agreement_storage () =
  let store, dnode = fixture () in
  let bs = B.of_store ~block_capacity:4 store dnode in
  let rootd = B.root bs in
  let planner = PlS.create bs rootd in
  let labels ds = List.map (fun d -> Label.to_raw (B.nid d)) ds in
  List.iter
    (fun q ->
      let naive =
        match ES.eval_string bs rootd q with Ok ds -> ds | Error e -> Alcotest.fail e
      in
      match PlS.eval_string planner q with
      | Ok ds -> Alcotest.(check (list string)) q (labels naive) (labels ds)
      | Error e -> Alcotest.failf "%s: %s" q e)
    (indexed_queries @ fallback_queries)

let test_planner_attributes () =
  let store = Store.create () in
  let doc =
    Tree.document
      (Tree.elem "r"
         ~children:
           [
             Tree.element (Tree.elem "item" ~attrs:[ Tree.attr "id" "a" ]);
             Tree.element (Tree.elem "item" ~attrs:[ Tree.attr "id" "b" ]);
             Tree.element (Tree.elem "item" ~attrs:[ Tree.attr "id" "c" ]);
           ])
  in
  let dnode = Convert.load store doc in
  let planner = Pl.create store dnode in
  List.iter
    (fun q ->
      let naive =
        match E.eval_string store dnode q with Ok ns -> ns | Error e -> Alcotest.fail e
      in
      check "uses index" true (Pl.uses_index planner (P.parse_exn q));
      match Pl.eval_string planner q with
      | Ok ns -> check_store_nodes q naive ns
      | Error e -> Alcotest.failf "%s: %s" q e)
    [ "/r/item/@id"; "/r/item[@id=\"b\"]"; "/r/item[@id>\"a\"]/@id"; "//@id" ]

(* ---------------- property: random documents, random updates ------- *)

let element_names store dnode =
  let seen = Hashtbl.create 16 in
  List.filter_map
    (fun n ->
      match Store.kind store n, Store.node_name store n with
      | Store.Kind.Element, Some name ->
        let s = Name.to_string name in
        if Hashtbl.mem seen s then None
        else begin
          Hashtbl.add seen s ();
          Some s
        end
      | _ -> None)
    (Store.descendants_or_self store dnode)

let queries_for store dnode rng =
  let names = element_names store dnode in
  let pick () = List.nth names (Gen.int rng (List.length names)) in
  let root_name =
    match Store.children store dnode with
    | r :: _ -> Name.to_string (Option.get (Store.node_name store r))
    | [] -> "x"
  in
  let n1 = pick () and n2 = pick () and n3 = pick () in
  [
    "//" ^ n1;
    "/" ^ root_name ^ "/*";
    "//" ^ n2 ^ "//" ^ n3;
    "//" ^ n1 ^ "[" ^ n2 ^ "]";
    "//" ^ n2 ^ "[" ^ n3 ^ ">\"A\"]";
    "//text()";
    "/" ^ root_name ^ "/descendant::" ^ n3;
  ]

let agree planner store dnode q =
  let naive =
    match E.eval_string store dnode q with Ok ns -> ns | Error e -> Alcotest.fail e
  in
  match Pl.eval_string planner q with
  | Ok ns -> check_store_nodes q naive ns
  | Error e -> Alcotest.failf "%s: %s" q e

let random_mutation store dnode rng =
  let elements =
    List.filter
      (fun n -> Store.kind store n = Store.Kind.Element)
      (Store.descendants_or_self store dnode)
  in
  let pick_elem () = List.nth elements (Gen.int rng (List.length elements)) in
  let op =
    match Gen.int rng 5 with
    | 0 ->
      Update.Insert_element
        {
          parent = pick_elem ();
          before = None;
          tree = Tree.elem "mutant" ~children:[ Tree.text "inserted" ];
        }
    | 1 -> Update.Insert_text { parent = pick_elem (); before = None; text = "mut" }
    | 2 -> (
      (* delete a childless element if one exists *)
      match
        List.find_opt
          (fun n ->
            Store.children store n = []
            &&
            match Store.parent store n with
            | Some p -> not (Store.equal_node p dnode)
            | None -> false)
          elements
      with
      | Some leaf -> Update.Delete leaf
      | None -> Update.Insert_text { parent = pick_elem (); before = None; text = "x" })
    | 3 -> (
      let texts =
        List.filter
          (fun n -> Store.kind store n = Store.Kind.Text)
          (Store.descendants_or_self store dnode)
      in
      match texts with
      | [] -> Update.Insert_text { parent = pick_elem (); before = None; text = "y" }
      | ts -> Update.Replace_content { node = List.nth ts (Gen.int rng (List.length ts)); value = "42" })
    | _ ->
      Update.Set_attribute
        { element = pick_elem (); name = Name.local "mut"; value = "7" }
  in
  match Update.apply store op with Ok _ -> () | Error _ -> ()

let test_property_random_docs () =
  let rng = Gen.rng 99 in
  for _ = 1 to 8 do
    let schema = Gen.random_schema ~max_depth:3 rng in
    let doc = Gen.instance rng schema in
    let store = Store.create () in
    let dnode = Convert.load store doc in
    let planner = Pl.create store dnode in
    let queries = queries_for store dnode rng in
    List.iter (agree planner store dnode) queries;
    (* mutate, invalidate, and check the rebuilt index again *)
    for _ = 1 to 4 do
      random_mutation store dnode rng
    done;
    Pl.invalidate planner;
    check "stale after invalidate" true (Pl.stale planner);
    List.iter (agree planner store dnode) (queries_for store dnode rng @ queries);
    check "fresh after re-evaluation" false (Pl.stale planner)
  done

let test_property_library () =
  (* the bench fixture, at a size where mistakes in the joins would show *)
  let store = Store.create () in
  let doc = Xsm_schema.Samples.library_document ~books:60 ~papers:30 () in
  let dnode = Convert.load store doc in
  let planner = Pl.create store dnode in
  List.iter
    (agree planner store dnode)
    [
      "//author";
      "/library/book/title";
      "//book[issue/year<1990]/title";
      "//book[issue/year>=1985]//year";
      "//book[issue]/author";
      "/library//publisher";
    ]

(* ---------------- qcheck: maintained stats = rebuilt stats --------

   The per-key counts behind {!VI.summary} are maintained inside
   [set_target]/[remove_target] — the calls the planner issues while
   draining the update journal.  After any random maintenance history
   they must agree with {!VI.rebuilt_summary}, which recomputes the
   same statistics from the by-target ground truth.  Keys are compared
   with [VI.Key.compare]: lexical variants of one decimal ("7",
   "7.0") are one key even when their representations differ. *)

module Q = QCheck

let seed_gen = Q.make ~print:string_of_int Q.Gen.(int_bound 1_000_000)

let to_alco ?(count = 200) name law =
  QCheck_alcotest.to_alcotest (Q.Test.make ~count ~name seed_gen law)

let summary_equal (a : VI.summary) (b : VI.summary) =
  a.VI.s_rows = b.VI.s_rows
  && a.VI.s_targets = b.VI.s_targets
  && a.VI.s_distinct = b.VI.s_distinct
  && a.VI.s_numbers = b.VI.s_numbers
  && List.length a.VI.s_buckets = List.length b.VI.s_buckets
  && List.for_all2
       (fun (k1, c1) (k2, c2) -> VI.Key.compare k1 k2 = 0 && c1 = c2)
       a.VI.s_buckets b.VI.s_buckets

let stats_law seed =
  let rng = Gen.rng seed in
  let vi = VI.create () in
  let labels = Array.of_list (Label.assign_children Label.root 24) in
  let value () =
    (* a mix of integers, decimals, text, lexical variants of one
       number, and whitespace-padded numerics (keyed as numbers) *)
    match Gen.int rng 6 with
    | 0 -> "7"
    | 1 -> "7.0"
    | 2 -> string_of_int (Gen.int rng 20)
    | 3 -> Printf.sprintf "%d.%d" (Gen.int rng 10) (Gen.int rng 100)
    | 4 -> String.make 1 (Char.chr (Char.code 'a' + Gen.int rng 5))
    | _ -> Printf.sprintf " %d " (Gen.int rng 20)
  in
  for _batch = 1 to 1 + Gen.int rng 6 do
    for _ = 1 to 1 + Gen.int rng 10 do
      let t = labels.(Gen.int rng (Array.length labels)) in
      match Gen.int rng 4 with
      | 0 -> VI.remove_target vi t
      | _ ->
        (* 0 values = removal through the set_target path *)
        let vals =
          List.init (Gen.int rng 3) (fun _ ->
              let s = value () in
              (VI.Key.of_string s, s))
        in
        VI.set_target vi ~target:t ~owner:t vals
    done;
    List.iter
      (fun buckets ->
        if
          not
            (summary_equal (VI.summary ~buckets vi) (VI.rebuilt_summary ~buckets vi))
        then
          Alcotest.failf "maintained summary (%d buckets) diverged from rebuild (seed %d)"
            buckets seed)
      [ 1; 4; 8 ]
  done;
  true

let suite =
  [
    ( "index.extent",
      [
        Alcotest.test_case "structural joins" `Quick test_extent_joins;
        Alcotest.test_case "value index probes" `Quick test_value_index_probes;
      ] );
    ( "index.parser",
      [ Alcotest.test_case "comparison predicates" `Quick test_parse_comparisons ] );
    ( "index.planner",
      [
        Alcotest.test_case "agreement (store)" `Quick test_planner_agreement_store;
        Alcotest.test_case "agreement (storage)" `Quick test_planner_agreement_storage;
        Alcotest.test_case "index vs fallback" `Quick test_planner_uses_index;
        Alcotest.test_case "attributes" `Quick test_planner_attributes;
      ] );
    ( "index.property",
      [
        Alcotest.test_case "random docs + updates" `Quick test_property_random_docs;
        Alcotest.test_case "library fixture" `Quick test_property_library;
        to_alco ~count:120 "maintained stats = rebuilt stats" stats_law;
      ] );
  ]
