(* Tests for xsm_storage: descriptive schema (§9.1), block storage and
   node descriptors (§9.2). *)

module Store = Xsm_xdm.Store
module Convert = Xsm_xdm.Convert
module DS = Xsm_storage.Descriptive_schema
module B = Xsm_storage.Block_storage
module Name = Xsm_xml.Name
module Label = Xsm_numbering.Sedna_label

let check = Alcotest.(check bool)
let check_int = Alcotest.(check int)
let check_str = Alcotest.(check string)

let load doc =
  let store = Store.create () in
  let dnode = Convert.load store doc in
  (store, dnode)

(* ---------------- descriptive schema ---------------- *)

let test_dataguide_example8 () =
  let store, dnode = load Xsm_schema.Samples.example8_document in
  let ds, _ = DS.of_tree store dnode in
  (* the paper's figure: /, library, book(title,author,issue(publisher,year)),
     paper(title,author) + text nodes under every leaf *)
  let paths = DS.paths ds in
  List.iter
    (fun expected ->
      if not (List.mem expected paths) then Alcotest.failf "missing path %s" expected)
    [
      "/library"; "/library/book"; "/library/book/title"; "/library/book/author";
      "/library/book/issue"; "/library/book/issue/publisher"; "/library/book/issue/year";
      "/library/paper"; "/library/paper/title"; "/library/paper/author";
    ];
  (* one path per distinct document path, regardless of instance count *)
  let store2, dnode2 = load (Xsm_schema.Samples.library_document ~books:50 ~papers:50 ()) in
  let ds2, _ = DS.of_tree store2 dnode2 in
  check_int "same schema for scaled library" (DS.node_count ds) (DS.node_count ds2)

let test_dataguide_path_bijection () =
  (* every document path exists in the schema and vice versa *)
  let store, dnode = load (Xsm_schema.Samples.library_document ~books:7 ~papers:3 ()) in
  let ds, snode_of = DS.of_tree store dnode in
  (* forward: every node maps to a schema node with the same (name,kind) path *)
  let rec doc_path n =
    match Store.parent store n with
    | None -> []
    | Some p ->
      doc_path p
      @ [ (Option.map Name.to_string (Store.node_name store n), Store.node_kind store n) ]
  in
  let rec schema_path sn =
    match DS.parent ds sn with
    | None -> []
    | Some p ->
      schema_path p
      @ [ (Option.map Name.to_string (DS.name sn), DS.kind_to_string (DS.kind sn)) ]
  in
  List.iter
    (fun n ->
      let sn = snode_of (Store.node_id n) in
      if doc_path n <> schema_path sn then Alcotest.fail "path mismatch")
    (Store.descendants_or_self store dnode);
  (* backward: every schema node has at least one instance (surjectivity) *)
  let instance_snodes =
    List.map
      (fun n -> DS.snode_id (snode_of (Store.node_id n)))
      (Store.descendants_or_self store dnode)
  in
  let rec all_snodes sn = sn :: List.concat_map all_snodes (DS.children ds sn) in
  List.iter
    (fun sn ->
      if not (List.mem (DS.snode_id sn) instance_snodes) then
        Alcotest.fail "schema node with no instances")
    (all_snodes (DS.root ds))

let test_dataguide_incremental () =
  let ds = DS.create () in
  let root = DS.root ds in
  let a1 = DS.find_or_add ds root ~name:(Some (Name.local "a")) DS.Element in
  let a2 = DS.find_or_add ds root ~name:(Some (Name.local "a")) DS.Element in
  check "find_or_add is idempotent" true (DS.equal_snode a1 a2);
  let t = DS.find_or_add ds a1 ~name:None DS.Text in
  check "text child" true (DS.kind t = DS.Text);
  (* same name, different kind = different schema node *)
  let at = DS.find_or_add ds a1 ~name:(Some (Name.local "a")) DS.Attribute in
  let el = DS.find_or_add ds a1 ~name:(Some (Name.local "a")) DS.Element in
  check "kind distinguishes" false (DS.equal_snode at el);
  check_int "node count" 5 (DS.node_count ds)

(* ---------------- block storage ---------------- *)

let build ?(block_capacity = 8) doc =
  let store, dnode = load doc in
  let bs = B.of_store ~block_capacity store dnode in
  (store, dnode, bs)

let test_build_and_integrity () =
  let store, _, bs = build (Xsm_schema.Samples.library_document ~books:20 ~papers:10 ()) in
  check_int "all nodes materialized" (Store.node_count store) (B.descriptor_count bs);
  match B.check_integrity bs with
  | Ok () -> ()
  | Error e -> Alcotest.fail e

let test_accessor_equivalence () =
  (* E9: every accessor over descriptors equals the XDM reference *)
  let store, dnode, bs = build (Xsm_schema.Samples.library_document ~books:12 ~papers:6 ()) in
  List.iter
    (fun n ->
      match B.descriptor_of_node bs n with
      | None -> Alcotest.fail "missing descriptor"
      | Some d ->
        check_str "node-kind" (Store.node_kind store n) (B.node_kind d);
        check "node-name" true
          (Option.equal Name.equal (Store.node_name store n) (B.node_name d));
        check_str "string-value" (Store.string_value store n) (B.string_value bs d);
        let expect_children = List.map (Store.string_value store) (Store.children store n) in
        let got_children = List.map (B.string_value bs) (B.children bs d) in
        Alcotest.(check (list string)) "children" expect_children got_children;
        let expect_attrs =
          List.filter_map (fun a -> Option.map Name.to_string (Store.node_name store a)) (Store.attributes store n)
        in
        let got_attrs =
          List.filter_map (fun a -> Option.map Name.to_string (B.node_name a)) (B.attributes bs d)
        in
        Alcotest.(check (list string)) "attributes" expect_attrs got_attrs;
        (* parent agreement *)
        (match Store.parent store n, B.parent d with
        | None, None -> ()
        | Some p, Some pd ->
          check "parent" true
            (match B.descriptor_of_node bs p with
            | Some pd' -> B.nid pd' = B.nid pd
            | None -> false)
        | _ -> Alcotest.fail "parent disagreement"))
    (Store.descendants_or_self store dnode)

let test_block_ordering_invariant () =
  (* the paper: descriptors in block i precede those in block j>i *)
  let _, _, bs = build ~block_capacity:4 (Xsm_schema.Samples.library_document ~books:30 ~papers:0 ()) in
  let ds = B.schema bs in
  let rec walk sn =
    let descs = B.descendants_by_snode bs sn in
    let rec increasing = function
      | a :: (b :: _ as rest) -> Label.compare (B.nid a) (B.nid b) < 0 && increasing rest
      | [ _ ] | [] -> true
    in
    if not (increasing descs) then Alcotest.fail "block scan out of document order";
    List.iter walk (DS.children ds sn)
  in
  walk (DS.root ds);
  check "blocks per snode > 1 somewhere" true
    (let rec any sn =
       B.blocks_of_snode bs sn > 1 || List.exists any (DS.children ds sn)
     in
     any (DS.root ds))

let test_first_child_by_schema () =
  let store, dnode, bs = build Xsm_schema.Samples.example8_document in
  ignore store;
  let rootd = B.root bs in
  let library = List.hd (B.children bs rootd) in
  let ds = B.schema bs in
  let lib_sn = B.snode library in
  (* library has exactly two child schema nodes: book and paper *)
  let child_snames =
    List.filter_map (fun sn -> Option.map Name.to_string (DS.name sn)) (DS.children ds lib_sn)
  in
  Alcotest.(check (list string)) "two pointers" [ "book"; "paper" ] child_snames;
  List.iter
    (fun sn ->
      match B.first_child_by_schema library sn with
      | Some d ->
        (* it is the nid-least child with that schema node *)
        let same =
          List.filter (fun c -> DS.equal_snode (B.snode c) sn) (B.children bs library)
        in
        check "first is least" true
          (List.for_all (fun c -> Label.compare (B.nid d) (B.nid c) <= 0) same)
      | None -> Alcotest.fail "missing first-child pointer")
    (DS.children ds lib_sn);
  ignore dnode

let test_insert_element_and_text () =
  let _, _, bs = build ~block_capacity:4 Xsm_schema.Samples.example8_document in
  let rootd = B.root bs in
  let library = List.hd (B.children bs rootd) in
  let count_before = List.length (B.children bs library) in
  let anchor = List.hd (B.children bs library) in
  let d, _ = B.insert_element bs ~parent:library ~after:(Some anchor) (Name.local "cd") in
  check_int "one more child" (count_before + 1) (List.length (B.children bs library));
  (* position: right after the anchor *)
  (match B.children bs library with
  | _ :: second :: _ -> check "inserted second" true (Label.equal (B.nid second) (B.nid d))
  | _ -> Alcotest.fail "expected children");
  (* give it a text child *)
  let t, _ = B.insert_text bs ~parent:d ~after:None "Best of 2004" in
  check_str "text value" "Best of 2004" (B.string_value bs t);
  check_str "element value" "Best of 2004" (B.string_value bs d);
  (* insert first (before everything) *)
  let d2, _ = B.insert_element bs ~parent:library ~after:None (Name.local "front") in
  (match B.children bs library with
  | first :: _ -> check "front inserted first" true (Label.equal (B.nid first) (B.nid d2))
  | [] -> Alcotest.fail "no children");
  match B.check_integrity bs with Ok () -> () | Error e -> Alcotest.fail e

let test_insert_attribute () =
  let _, _, bs = build Xsm_schema.Samples.example8_document in
  let library = List.hd (B.children bs (B.root bs)) in
  let a, _ = B.insert_attribute bs ~parent:library (Name.local "curated") "yes" in
  check_str "attr value" "yes" (B.string_value bs a);
  check_int "one attribute" 1 (List.length (B.attributes bs library));
  (* attributes precede element children in order *)
  let first_child = List.hd (B.children bs library) in
  check "attr before children" true (Label.compare (B.nid a) (B.nid first_child) < 0);
  match B.check_integrity bs with Ok () -> () | Error e -> Alcotest.fail e

let test_block_splits () =
  (* tiny blocks + many inserts at one point force splits *)
  let _, _, bs = build ~block_capacity:4 (Xsm_schema.Samples.library_document ~books:10 ~papers:0 ()) in
  let library = List.hd (B.children bs (B.root bs)) in
  let anchor = List.hd (B.children bs library) in
  let total_moved = ref 0 in
  for _ = 1 to 50 do
    let _, moved = B.insert_element bs ~parent:library ~after:(Some anchor) (Name.local "x") in
    total_moved := !total_moved + moved
  done;
  check "splits happened" true (B.split_count bs > 0);
  check "descriptors moved" true (!total_moved > 0);
  match B.check_integrity bs with Ok () -> () | Error e -> Alcotest.fail e

let test_delete () =
  let _, _, bs = build Xsm_schema.Samples.example8_document in
  let library = List.hd (B.children bs (B.root bs)) in
  let before = List.length (B.children bs library) in
  (* delete the first paper's title text, then the title, exercising
     leaf-only deletion *)
  let book1 = List.hd (B.children bs library) in
  (match B.delete bs book1 with
  | exception Invalid_argument _ -> ()
  | () -> Alcotest.fail "deleting an inner node must fail");
  let title = List.hd (B.children bs book1) in
  let text = List.hd (B.children bs title) in
  B.delete bs text;
  check_str "title now empty" "" (B.string_value bs title);
  B.delete bs title;
  check "title gone" true
    (List.for_all
       (fun c -> B.node_name c <> Some (Name.local "title"))
       (B.children bs book1));
  check_int "library children unchanged" before (List.length (B.children bs library));
  match B.check_integrity bs with Ok () -> () | Error e -> Alcotest.fail e

let test_descendants_by_snode_counts () =
  let _, _, bs = build (Xsm_schema.Samples.library_document ~books:9 ~papers:4 ()) in
  let ds = B.schema bs in
  let rec find sn path =
    match path with
    | [] -> Some sn
    | name :: rest -> (
      match
        List.find_opt
          (fun c -> DS.name c = Some (Name.local name))
          (DS.children ds sn)
      with
      | Some c -> find c rest
      | None -> None)
  in
  (match find (DS.root ds) [ "library"; "book" ] with
  | Some book_sn -> check_int "9 books" 9 (List.length (B.descendants_by_snode bs book_sn))
  | None -> Alcotest.fail "book schema node not found");
  match find (DS.root ds) [ "library"; "paper"; "title" ] with
  | Some t_sn -> check_int "4 paper titles" 4 (List.length (B.descendants_by_snode bs t_sn))
  | None -> Alcotest.fail "paper title schema node not found"

let test_serialization_roundtrip () =
  (* g computed from the physical representation: of_store then
     to_document reproduces the original document *)
  List.iter
    (fun doc ->
      let store, dnode = load doc in
      let bs = B.of_store ~block_capacity:4 store dnode in
      let back = B.to_document bs in
      if not (Xsm_xml.Tree.equal_content back doc) then
        Alcotest.fail "storage serialization diverged")
    [
      Xsm_schema.Samples.example8_document;
      Xsm_schema.Samples.library_document ~books:13 ~papers:7 ();
      Xsm_schema.Samples.bookstore_document ~books:5 ();
    ]

let test_serialization_after_updates () =
  let store, dnode = load Xsm_schema.Samples.example8_document in
  let bs = B.of_store store dnode in
  let library = List.hd (B.children bs (B.root bs)) in
  let anchor = List.hd (B.children bs library) in
  let d, _ = B.insert_element bs ~parent:library ~after:(Some anchor) (Name.local "cd") in
  let _ = B.insert_text bs ~parent:d ~after:None "Readings in DB" in
  let _ = B.insert_attribute bs ~parent:d (Name.local "year") "2004" in
  let back = B.to_document bs in
  (* the serialized document contains the inserted node in position *)
  let lib = back.Xsm_xml.Tree.root in
  (match Xsm_xml.Tree.child_elements lib with
  | _ :: second :: _ ->
    check "cd in position" true (Name.to_string second.Xsm_xml.Tree.name = "cd");
    check "cd text" true (Xsm_xml.Tree.text_content second = "Readings in DB");
    check "cd attr" true
      (Xsm_xml.Tree.attribute_value second (Name.local "year") = Some "2004")
  | _ -> Alcotest.fail "expected children")

(* ---------------- buffer pool ---------------- *)

module BP = Xsm_storage.Buffer_pool

let test_lru_mechanics () =
  let p = BP.create ~capacity:2 in
  check "miss 1" true (BP.touch p 1 = `Miss);
  check "miss 2" true (BP.touch p 2 = `Miss);
  check "hit 1" true (BP.touch p 1 = `Hit);
  (* 2 is now LRU; touching 3 evicts it *)
  check "miss 3" true (BP.touch p 3 = `Miss);
  check "2 evicted" true (BP.touch p 2 = `Miss);
  let s = BP.stats p in
  check_int "accesses" 5 s.BP.accesses;
  check_int "hits" 1 s.BP.hits;
  check_int "distinct" 3 s.BP.distinct;
  match BP.create ~capacity:0 with
  | exception Invalid_argument _ -> ()
  | _ -> Alcotest.fail "capacity 0 accepted"

let test_hit_ratio_of_untouched_pool () =
  (* an untouched pool has no hit ratio, not a perfect one — 0/0
     reported as 1.0 once made cold caches look ideal in reports *)
  let p = BP.create ~capacity:4 in
  Alcotest.(check (option (float 0.0))) "fresh pool" None (BP.hit_ratio (BP.stats p));
  ignore (BP.touch p 1);
  Alcotest.(check (option (float 0.0))) "first access misses" (Some 0.0)
    (BP.hit_ratio (BP.stats p));
  ignore (BP.touch p 1);
  Alcotest.(check (option (float 0.0))) "second access hits" (Some 0.5)
    (BP.hit_ratio (BP.stats p));
  BP.reset_stats p;
  Alcotest.(check (option (float 0.0))) "stats reset: no ratio again" None
    (BP.hit_ratio (BP.stats p))

let test_scan_locality () =
  (* a block scan touches each block exactly once per resident period:
     misses = distinct blocks even with a tiny pool *)
  let _, _, bs = build ~block_capacity:4 (Xsm_schema.Samples.library_document ~books:40 ~papers:0 ()) in
  let ds = B.schema bs in
  let rec find sn = function
    | [] -> Some sn
    | name :: rest -> (
      match
        List.find_opt (fun c -> DS.name c = Some (Name.local name)) (DS.children ds sn)
      with
      | Some c -> find c rest
      | None -> None)
  in
  let author_sn = Option.get (find (DS.root ds) [ "library"; "book"; "author" ]) in
  let trace = BP.scan_trace bs author_sn in
  let s = BP.run_trace ~capacity:2 trace in
  check_int "sequential scan: misses = distinct" s.BP.distinct s.BP.misses;
  check "trace nonempty" true (trace <> [])

let test_navigation_vs_scan_hit_ratio () =
  let _, _, bs = build ~block_capacity:4 (Xsm_schema.Samples.library_document ~books:60 ~papers:30 ()) in
  let nav = BP.navigation_trace bs (B.root bs) in
  let capacity = 4 in
  let nav_stats = BP.run_trace ~capacity nav in
  (* navigation revisits blocks after eviction: more misses than
     distinct blocks *)
  check "navigation refaults" true (nav_stats.BP.misses > nav_stats.BP.distinct);
  (* a full scan of every snode in block order never refaults *)
  let ds = B.schema bs in
  let rec all_snodes sn = sn :: List.concat_map all_snodes (DS.children ds sn) in
  let scan = List.concat_map (BP.scan_trace bs) (all_snodes (DS.root ds)) in
  let scan_stats = BP.run_trace ~capacity scan in
  check_int "scan never refaults" scan_stats.BP.distinct scan_stats.BP.misses;
  check "same data touched" true (scan_stats.BP.accesses = nav_stats.BP.accesses)

let suite =
  [
    ( "storage.dataguide",
      [
        Alcotest.test_case "example 8" `Quick test_dataguide_example8;
        Alcotest.test_case "path bijection" `Quick test_dataguide_path_bijection;
        Alcotest.test_case "incremental" `Quick test_dataguide_incremental;
      ] );
    ( "storage.blocks",
      [
        Alcotest.test_case "build + integrity" `Quick test_build_and_integrity;
        Alcotest.test_case "accessor equivalence (E9)" `Quick test_accessor_equivalence;
        Alcotest.test_case "block ordering" `Quick test_block_ordering_invariant;
        Alcotest.test_case "first-child-by-schema" `Quick test_first_child_by_schema;
        Alcotest.test_case "insert element/text" `Quick test_insert_element_and_text;
        Alcotest.test_case "insert attribute" `Quick test_insert_attribute;
        Alcotest.test_case "block splits" `Quick test_block_splits;
        Alcotest.test_case "delete" `Quick test_delete;
        Alcotest.test_case "block scans" `Quick test_descendants_by_snode_counts;
        Alcotest.test_case "serialization" `Quick test_serialization_roundtrip;
        Alcotest.test_case "serialization after updates" `Quick test_serialization_after_updates;
      ] );
    ( "storage.buffer-pool",
      [
        Alcotest.test_case "LRU mechanics" `Quick test_lru_mechanics;
        Alcotest.test_case "untouched pool has no hit ratio" `Quick
          test_hit_ratio_of_untouched_pool;
        Alcotest.test_case "scan locality" `Quick test_scan_locality;
        Alcotest.test_case "navigation vs scan" `Quick test_navigation_vs_scan_hit_ratio;
      ] );
  ]
