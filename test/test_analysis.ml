(* The static analyzer (lib/analysis): UPA witnesses, determinized
   tables, reachability, satisfiability, cardinality intervals, static
   query analysis and planner pruning. *)

module Ast = Xsm_schema.Ast
module CA = Xsm_schema.Content_automaton
module Name = Xsm_xml.Name
module Tree = Xsm_xml.Tree
module A = Xsm_analysis.Analyzer
module Cardinality = Xsm_analysis.Cardinality
module Hygiene = Xsm_analysis.Hygiene
module QS = Xsm_analysis.Query_static

let check = Alcotest.check
let parse = Xsm_xpath.Path_parser.parse_exn

let has_prefix p s =
  String.length s >= String.length p && String.sub s 0 (String.length p) = p

let contains sub s =
  let n = String.length sub in
  let rec go i = i + n <= String.length s && (String.sub s i n = sub || go (i + 1)) in
  go 0

(* ---------------- fixtures ---------------- *)

(* the library schema of samples/library.xsd, built directly *)
let library_schema =
  let open Ast in
  let issue =
    complex
      (Some
         (sequence
            [
              elem_p (element "publisher" (named_type "xs:string"));
              elem_p (element "year" (named_type "xs:gYear"));
            ]))
  in
  let book =
    complex
      (Some
         (sequence
            [
              elem_p (element "title" (named_type "xs:string"));
              elem_p
                (element "author" ~repetition:(repeat 1 None) (named_type "xs:string"));
              elem_p (element "issue" ~repetition:optional (named_type "Issue"));
            ]))
  in
  schema
    ~complex_types:[ ("Issue", issue); ("Book", book) ]
    (element "library"
       (Anonymous
          (complex
             (Some (sequence [ elem_p (element "book" ~repetition:many (named_type "Book")) ])))))

let library_doc =
  let e name children = Tree.Element (Tree.elem name ~children) in
  let t s = Tree.Text s in
  Tree.document
    (Tree.elem "library"
       ~children:
         [
           e "book"
             [
               e "title" [ t "Foundations" ];
               e "author" [ t "Abiteboul" ];
               e "issue" [ e "publisher" [ t "AW" ]; e "year" [ t "1995" ] ];
             ];
           e "book" [ e "title" [ t "Sedna" ]; e "author" [ t "Novak" ] ];
         ])

(* sequence (header, (note?), (note)) — UPA-ambiguous after "header" *)
let ambiguous_schema =
  let open Ast in
  schema
    (element "memo"
       (Anonymous
          (complex
             (Some
                (sequence
                   [
                     elem_p (element "header" (named_type "xs:string"));
                     group_p
                       (sequence
                          [ elem_p (element "note" ~repetition:optional (named_type "xs:string")) ]);
                     group_p (sequence [ elem_p (element "note" (named_type "xs:token")) ]);
                   ])))))

(* ---------------- UPA ---------------- *)

let upa_witness () =
  let report = A.analyze ambiguous_schema in
  match List.filter (fun (f : A.finding) -> f.pass = "upa") report.A.findings with
  | [ f ] ->
    check Alcotest.bool "severity" true (f.A.severity = A.Error);
    check Alcotest.bool "mentions witness" true (contains "\"header note\"" f.A.message)
  | fs -> Alcotest.failf "expected one upa finding, got %d" (List.length fs)

let upa_conflict_shape () =
  let g =
    match ambiguous_schema.Ast.root.Ast.elem_type with
    | Ast.Anonymous (Ast.Complex_content { content = Some g; _ }) -> g
    | _ -> assert false
  in
  match CA.make g with
  | Error e -> Alcotest.fail e
  | Ok a -> (
    match CA.upa_conflict a with
    | None -> Alcotest.fail "expected a conflict"
    | Some c ->
      check Alcotest.string "conflicting name" "note" (Name.to_string c.CA.conflict_name);
      check
        Alcotest.(list string)
        "shortest witness" [ "header"; "note" ]
        (List.map Name.to_string c.CA.witness))

let upa_clean_library () =
  let report = A.analyze library_schema in
  check Alcotest.(list string) "no findings" []
    (List.map (fun (f : A.finding) -> f.A.message) (A.significant report));
  check Alcotest.int "content models determinized" 3 (List.length report.A.tables)

(* ---------------- reachability / satisfiability ---------------- *)

let orphan_schema =
  let open Ast in
  schema
    ~complex_types:
      [
        ( "Orphan",
          complex (Some (sequence [ elem_p (element "x" (named_type "xs:string")) ])) );
      ]
    (element "root" (named_type "xs:string"))

let reachability () =
  check
    Alcotest.(list string)
    "unreachable" [ "Orphan" ]
    (List.map Name.to_string (Hygiene.unreachable_types orphan_schema));
  let report = A.analyze orphan_schema in
  check Alcotest.bool "warning emitted" true
    (List.exists (fun (f : A.finding) -> f.A.pass = "reachability") report.A.findings)

let unsat_schema =
  (* T requires an x of type T: no finite instance *)
  let open Ast in
  schema
    ~complex_types:
      [ ("T", complex (Some (sequence [ elem_p (element "x" (named_type "T")) ]))) ]
    (element "x" (named_type "T"))

let sat_schema =
  (* the recursion is optional: satisfiable *)
  let open Ast in
  schema
    ~complex_types:
      [
        ( "T",
          complex
            (Some (sequence [ elem_p (element "x" ~repetition:optional (named_type "T")) ]))
        );
      ]
    (element "x" (named_type "T"))

let satisfiability () =
  check Alcotest.(option int) "unsat min" None (Hygiene.min_content unsat_schema unsat_schema.Ast.root);
  check Alcotest.(option int) "sat min" (Some 1) (Hygiene.min_content sat_schema sat_schema.Ast.root);
  let report = A.analyze unsat_schema in
  check Alcotest.bool "root unsat is an error" true
    (List.exists
       (fun (f : A.finding) -> f.A.pass = "satisfiability" && f.A.severity = A.Error)
       report.A.findings);
  check Alcotest.(list string) "sat schema is clean" []
    (List.map
       (fun (f : A.finding) -> f.A.message)
       (A.significant (A.analyze sat_schema)))

(* ---------------- cardinalities ---------------- *)

let cardinalities () =
  let report = A.analyze library_schema in
  let ivs =
    List.map
      (fun (p, iv, r) -> (p, Cardinality.to_string iv ^ if r then "R" else ""))
      report.A.cardinalities
  in
  check
    Alcotest.(list (pair string string))
    "paths"
    [
      ("/library", "[1,1]");
      ("/library/book", "[0,*]");
      ("/library/book/title", "[1,1]");
      ("/library/book/author", "[1,*]");
      ("/library/book/issue", "[0,1]");
      ("/library/book/issue/publisher", "[1,1]");
      ("/library/book/issue/year", "[1,1]");
    ]
    ivs

let choice_intervals () =
  (* (a | (b, b)){0,2}: a in [0,2], b in [0,4] *)
  let open Ast in
  let g =
    choice
      ~repetition:(repeat 0 (Some 2))
      [
        elem_p (element "a" (named_type "xs:string"));
        group_p
          (sequence
             [
               elem_p (element "b" (named_type "xs:string"));
               elem_p (element "b2" (named_type "xs:string"));
             ]);
      ]
  in
  (* avoid duplicate names within a group: use b and b2 *)
  let ivs =
    List.map (fun (n, iv) -> (Name.to_string n, Cardinality.to_string iv)) (Cardinality.of_group g)
  in
  check
    Alcotest.(list (pair string string))
    "choice scaling"
    [ ("a", "[0,2]"); ("b", "[0,2]"); ("b2", "[0,2]") ]
    ivs

(* ---------------- static query analysis ---------------- *)

let qs_verdict q =
  match (QS.analyze_schema library_schema (parse q)).QS.verdict with
  | QS.Empty _ -> "empty"
  | QS.Maybe -> "maybe"

let query_static () =
  check Alcotest.string "live path" "maybe" (qs_verdict "/library/book/title");
  check Alcotest.string "missing element" "empty" (qs_verdict "/library/magazine");
  check Alcotest.string "missing nested" "empty" (qs_verdict "/library/magazine/title");
  check Alcotest.string "descendant live" "maybe" (qs_verdict "//year");
  check Alcotest.string "descendant dead" "empty" (qs_verdict "//isbn");
  check Alcotest.string "attribute dead" "empty" (qs_verdict "/library/@id");
  check Alcotest.string "wildcard live" "maybe" (qs_verdict "/library/*");
  check Alcotest.string "pred emptied" "empty" (qs_verdict "/library/book[frontmatter]")

let never_equal () =
  let r = QS.analyze_schema library_schema (parse "//book[issue/year='not-a-year']") in
  check Alcotest.bool "verdict empty" true (match r.QS.verdict with QS.Empty _ -> true | _ -> false);
  check Alcotest.int "one warning" 1 (List.length r.QS.warnings);
  (* a literal in the lexical space stays possible *)
  let ok = QS.analyze_schema library_schema (parse "//book[issue/year='1995']") in
  check Alcotest.bool "valid literal keeps Maybe" true (ok.QS.verdict = QS.Maybe)

let date_schema =
  let open Ast in
  schema
    (element "log"
       (Anonymous
          (complex
             (Some
                (sequence
                   [ elem_p (element "when" ~repetition:many (named_type "xs:date")) ])))))

let never_comparable () =
  (* a date's key family is text; the literal 5 is a number: the
     comparison can never hold *)
  let r = QS.analyze_schema date_schema (parse "/log[when < 5]") in
  check Alcotest.bool "verdict empty" true (match r.QS.verdict with QS.Empty _ -> true | _ -> false);
  check Alcotest.int "one warning" 1 (List.length r.QS.warnings);
  (* date vs text literal: same family, could hold *)
  let ok = QS.analyze_schema date_schema (parse "/log[when < '2002-01-01']") in
  check Alcotest.bool "text literal keeps Maybe" true (ok.QS.verdict = QS.Maybe)

(* ---------------- always-true folding ---------------- *)

module G = Xsm_analysis.Schema_graph
module E = Xsm_analysis.Estimator
module Plan = Xsm_xpath.Plan

let shop_schema =
  let open Ast in
  let dt = Xsm_datatypes.Decimal.of_int in
  let price_ty =
    match
      Xsm_datatypes.Simple_type.restrict Xsm_datatypes.Simple_type.integer
        [
          Xsm_datatypes.Facet.Min_inclusive (Xsm_datatypes.Value.Decimal (dt 1));
          Xsm_datatypes.Facet.Max_inclusive (Xsm_datatypes.Value.Decimal (dt 100));
        ]
    with
    | Ok t -> t
    | Error e -> failwith e
  in
  let item =
    complex
      (Some
         (sequence
            [
              elem_p (element "price" (Anonymous_simple price_ty));
              elem_p (element "stock" (named_type "xs:nonNegativeInteger"));
            ]))
  in
  schema
    (element "shop"
       (Anonymous
          (complex
             (Some
                (sequence
                   [ elem_p (element "item" ~repetition:many (Anonymous item)) ])))))

let folding () =
  let lib = G.build library_schema in
  let shop = G.build shop_schema in
  let f g q = Xsm_xpath.Path_ast.to_string (QS.fold g (parse q)) in
  let same g q = check Alcotest.string q (Xsm_xpath.Path_ast.to_string (parse q)) (f g q) in
  (* mandatory existence folds; optional stays *)
  check Alcotest.string "exists folds" "/library/book/title" (f lib "/library/book[author]/title");
  check Alcotest.string "exists folds under //" "//book/title" (f lib "//book[title]/title");
  same lib "/library/book[issue]/title";
  same lib "/library/book[issue/publisher]/title";
  check Alcotest.string "only the provable predicate folds"
    "/library/book[issue/publisher]"
    (f lib "/library/book[issue/publisher][author]");
  (* value predicates: equality never folds, forced comparisons do *)
  same lib "/library/book[author='Novak']";
  check Alcotest.string "forced by facets" "/shop/item" (f shop "/shop/item[price>=1]");
  check Alcotest.string "forced upper bound" "/shop/item" (f shop "/shop/item[price<=100]");
  check Alcotest.string "forced by builtin range" "/shop/item" (f shop "/shop/item[stock>=0]");
  same shop "/shop/item[price>=2]";
  same shop "/shop/item[price>1]";
  same shop "/shop/item[stock>0]";
  (* trivial positional tests *)
  check Alcotest.string "position()>=1" "/library/book" (f lib "/library/book[position()>=1]");
  same lib "/library/book[position()<=2]";
  (* relative paths pass through untouched *)
  same lib "book[author]/title"

let fold_agrees () =
  let store, dnode =
    match Xsm_schema.Validator.validate_document library_doc library_schema with
    | Ok sd -> sd
    | Error _ -> Alcotest.fail "fixture invalid"
  in
  let g = G.build library_schema in
  List.iter
    (fun q ->
      let p = parse q in
      let fp = QS.fold g p in
      let before = Xsm_xpath.Eval.Over_store.eval store dnode p in
      let after = Xsm_xpath.Eval.Over_store.eval store dnode fp in
      check Alcotest.int (q ^ ": same cardinality") (List.length before)
        (List.length after);
      List.iter2
        (fun a b ->
          check Alcotest.bool (q ^ ": same nodes") true (Xsm_xdm.Store.equal_node a b))
        before after)
    [
      "/library/book[author]/title";
      "/library/book[title][author='Novak']/title";
      "//book[author][1]/title";
      "/library/book[position()>=1]/author";
    ]

(* ---------------- schema-side estimator ---------------- *)

let estimator_basics () =
  let g = G.build library_schema in
  let store, dnode =
    match Xsm_schema.Validator.validate_document library_doc library_schema with
    | Ok sd -> sd
    | Error _ -> Alcotest.fail "fixture invalid"
  in
  let est q = (E.estimate g (parse q)).Plan.e_rows in
  let interval q = Plan.to_string { (est q) with Plan.expect = 0. } in
  check Alcotest.string "root element" "[1,1]~0.0" (interval "/library");
  check Alcotest.string "unbounded" "[0,*]~0.0" (interval "/library/book");
  check Alcotest.string "optional chain" "[0,*]~0.0" (interval "/library/book/issue/year");
  (* the interval contains the actual count on a valid instance *)
  List.iter
    (fun q ->
      let actual =
        List.length (Xsm_xpath.Eval.Over_store.eval store dnode (parse q))
      in
      check Alcotest.bool
        (Printf.sprintf "%s: %s contains %d" q (Plan.to_string (est q)) actual)
        true
        (Plan.contains (est q) actual))
    [
      "/library";
      "/library/book";
      "/library/book/title";
      "//author";
      "//book[issue]/title";
      "//book[author='Novak']/title";
      "/library/book[1]/author[position()<=2]";
      "//book[issue/year<'2000']";
    ];
  (* out-of-fragment shapes degrade to unknown but stay sound *)
  let up = E.estimate g (parse "/library/book/..") in
  check Alcotest.bool "unsupported flagged" false up.Plan.e_supported;
  (* report carries the analyze --cost fields *)
  let module J = Xsm_obs.Json in
  let r = E.report g (parse "//book/title") in
  List.iter
    (fun k -> check Alcotest.bool k true (J.member k r <> None))
    [ "query"; "supported"; "rows"; "eval_cost"; "estimate" ];
  match J.member "eval_cost" r with
  | Some (J.Num c) -> check Alcotest.bool "positive cost" true (c > 0.)
  | _ -> Alcotest.fail "eval_cost not a number"

(* ---------------- planner pruning ---------------- *)

let pruning_agrees () =
  let store, dnode =
    match Xsm_schema.Validator.validate_document library_doc library_schema with
    | Ok sd -> sd
    | Error es ->
      Alcotest.failf "fixture invalid: %s"
        (String.concat "; " (List.map Xsm_schema.Validator.error_to_string es))
  in
  let module Pl = Xsm_xpath.Planner.Over_store in
  let planner = Pl.create store dnode in
  Pl.set_pruner planner (QS.pruner library_schema);
  let queries =
    [
      "/library/book/title";
      "/library/magazine";
      "/library/magazine/title";
      "//year";
      "//isbn";
      "/library/book[issue/year='1995']/title";
      "/library/book[issue/year='not-a-year']/title";
      "//book[author='Novak']/title";
      "/library/book[frontmatter]";
    ]
  in
  List.iter
    (fun q ->
      let p = parse q in
      let via_planner = Pl.eval planner p in
      let via_eval = Xsm_xpath.Eval.Over_store.eval store dnode p in
      check Alcotest.int (q ^ ": same cardinality") (List.length via_eval)
        (List.length via_planner);
      List.iter2
        (fun a b ->
          check Alcotest.bool (q ^ ": same nodes") true (Xsm_xdm.Store.equal_node a b))
        via_eval via_planner)
    queries;
  check Alcotest.bool "pruned at least the three empty queries" true
    (Pl.pruned_count planner >= 3);
  check Alcotest.bool "explain reports pruning" true
    (has_prefix "pruned(" (Pl.explain planner (parse "//isbn")))

(* ---------------- validator handoff ---------------- *)

let validator_handoff () =
  let report = A.analyze library_schema in
  let direct = Xsm_schema.Validator.validate_document library_doc library_schema in
  let seeded =
    Xsm_schema.Validator.validate_document ~automata:report.A.tables library_doc
      library_schema
  in
  check Alcotest.bool "both valid" true (Result.is_ok direct && Result.is_ok seeded)

(* ---------------- structured locations ---------------- *)

let locations () =
  let open Ast in
  let bad =
    schema
      ~complex_types:
        [
          ( "Book",
            complex
              ~attributes:[ attribute "isbn" "xs:noSuchType" ]
              (Some (sequence [ elem_p (element "title" (named_type "xs:string")) ])) );
        ]
      (element "library"
         (Anonymous
            (complex (Some (sequence [ elem_p (element "book" (named_type "Book")) ])))))
  in
  match Xsm_schema.Schema_check.check bad with
  | Ok () -> Alcotest.fail "expected an error"
  | Error (e :: _) ->
    check Alcotest.string "location path" "Book/@isbn"
      (Xsm_schema.Schema_check.location_to_string e.Xsm_schema.Schema_check.loc)
  | Error [] -> Alcotest.fail "empty error list"

(* ---------------- qcheck: table = backtracking validator ---------------- *)

module Q = QCheck

let seed_gen = Q.make ~print:string_of_int Q.Gen.(int_bound 1_000_000)

let to_alco ?(count = 200) name law =
  QCheck_alcotest.to_alcotest (Q.Test.make ~count ~name seed_gen law)

let gen_group r =
  let int = Xsm_schema.Generator.int in
  let letters = [ "a"; "b"; "c" ] in
  let rec group depth =
    let n = 1 + int r 3 in
    let particles =
      List.init n (fun _ ->
          if depth > 0 && int r 3 = 0 then Ast.group_p (group (depth - 1))
          else
            Ast.elem_p
              (Ast.element ~repetition:(rep ())
                 (List.nth letters (int r 3))
                 (Ast.named_type "xs:string")))
    in
    if int r 2 = 0 then Ast.sequence ~repetition:(rep ()) particles
    else Ast.choice ~repetition:(rep ()) particles
  and rep () =
    match int r 4 with
    | 0 -> Ast.once
    | 1 -> Ast.optional
    | 2 -> Ast.many
    | _ -> Ast.repeat (int r 2) (Some (1 + int r 2))
  in
  group 2

(* On deterministic generated content models, the compiled transition
   table accepts exactly the language of the backtracking validator —
   and attributes each child to an element declaration of its name. *)
let table_backtrack_law seed =
  let rng = Xsm_schema.Generator.rng seed in
  let g = gen_group rng in
  match Xsm_schema.Content_automaton.make g with
  | Error _ -> true
  | Ok a -> (
    match CA.compile a with
    | None -> CA.upa_conflict a <> None (* not deterministic: must have a witness *)
    | Some table ->
      CA.upa_conflict a = None
      &&
      let word =
        List.init
          (Xsm_schema.Generator.int rng 7)
          (fun _ ->
            Name.local (List.nth [ "a"; "b"; "c" ] (Xsm_schema.Generator.int rng 3)))
      in
      let bt = Xsm_schema.Backtrack.matches g word in
      (match CA.table_run table word with
      | None -> not bt
      | Some decls ->
        bt
        && List.length decls = List.length word
        && List.for_all2 (fun (d : Ast.element_decl) n -> Name.equal d.Ast.elem_name n) decls word))

(* Estimator soundness: on a random schema and a random valid
   instance, the row interval of every derived query — from both the
   schema provider and the planner's instance provider — contains the
   evaluator's actual cardinality. *)
let containment_law seed =
  let rng = Xsm_schema.Generator.rng seed in
  let s = Xsm_schema.Generator.random_schema rng in
  match Xsm_schema.Schema_check.check s with
  | Error _ -> true
  | Ok () -> (
    let doc = Xsm_schema.Generator.instance rng s in
    match Xsm_schema.Validator.validate_document doc s with
    | Error _ -> true
    | Ok (store, dnode) ->
      let g = G.build s in
      let module Pl = Xsm_xpath.Planner.Over_store in
      let planner = Pl.create store dnode in
      let queries =
        List.concat_map
          (fun (p, _, _) ->
            let leaf =
              match String.rindex_opt p '/' with
              | Some i -> String.sub p (i + 1) (String.length p - i - 1)
              | None -> p
            in
            [ p; p ^ "[1]"; "//" ^ leaf; "//" ^ leaf ^ "[position()<=2]" ])
          (G.element_paths g)
      in
      List.for_all
        (fun q ->
          match Xsm_xpath.Path_parser.parse q with
          | Error _ -> true
          | Ok p ->
            let actual =
              List.length (Xsm_xpath.Eval.Over_store.eval store dnode p)
            in
            let schema_est = (E.estimate g p).Plan.e_rows in
            let planner_est = (Pl.estimate planner p).Plan.e_rows in
            Plan.contains schema_est actual && Plan.contains planner_est actual)
        queries)

(* a UPA witness is a real ambiguity certificate: the witness word's
   proper prefix is a viable prefix of the language *)
let witness_viable_law seed =
  let rng = Xsm_schema.Generator.rng seed in
  let g = gen_group rng in
  match Xsm_schema.Content_automaton.make g with
  | Error _ -> true
  | Ok a -> (
    match CA.upa_conflict a with
    | None -> true
    | Some c ->
      Name.equal c.CA.conflict_name (List.nth c.CA.witness (List.length c.CA.witness - 1))
      && Name.equal c.CA.first_decl.Ast.elem_name c.CA.conflict_name
      && Name.equal c.CA.second_decl.Ast.elem_name c.CA.conflict_name)

let suite =
  [
    ( "analysis",
      [
        Alcotest.test_case "upa witness" `Quick upa_witness;
        Alcotest.test_case "upa conflict shape" `Quick upa_conflict_shape;
        Alcotest.test_case "upa clean library" `Quick upa_clean_library;
        Alcotest.test_case "reachability" `Quick reachability;
        Alcotest.test_case "satisfiability" `Quick satisfiability;
        Alcotest.test_case "cardinalities" `Quick cardinalities;
        Alcotest.test_case "choice intervals" `Quick choice_intervals;
        Alcotest.test_case "query static verdicts" `Quick query_static;
        Alcotest.test_case "never-equal literal" `Quick never_equal;
        Alcotest.test_case "never-comparable families" `Quick never_comparable;
        Alcotest.test_case "always-true folding" `Quick folding;
        Alcotest.test_case "folding agrees with Eval" `Quick fold_agrees;
        Alcotest.test_case "estimator basics" `Quick estimator_basics;
        Alcotest.test_case "planner pruning agrees with Eval" `Quick pruning_agrees;
        Alcotest.test_case "validator handoff" `Quick validator_handoff;
        Alcotest.test_case "structured locations" `Quick locations;
        to_alco "determinized table = backtracking validator" table_backtrack_law;
        to_alco ~count:60 "estimate interval contains actual count" containment_law;
        to_alco "upa witness certificate shape" witness_viable_law;
      ] );
  ]
