#!/usr/bin/env bash
# End-to-end streaming-ingest checks through the xsm binary: stdin
# validation ("-"), tree/stream verdict agreement, streaming error
# positions, bulk load round-trip with --stats/--print, load-time WAL +
# snapshot with crash injection (exit 3) and prefix recovery, and the
# differential index feed during a load.
set -u
XSM="$1"
tmp=$(mktemp -d)
trap 'rm -rf "$tmp"' EXIT
fail() { echo "FAIL: $1" >&2; exit 1; }

cat > "$tmp/schema.xsd" <<'EOF'
<xs:schema xmlns:xs="http://www.w3.org/2001/XMLSchema">
  <xs:element name="library">
    <xs:complexType>
      <xs:sequence>
        <xs:element name="book" maxOccurs="unbounded">
          <xs:complexType>
            <xs:sequence>
              <xs:element name="title" type="xs:string"/>
              <xs:element name="year" type="xs:integer"/>
            </xs:sequence>
          </xs:complexType>
        </xs:element>
      </xs:sequence>
    </xs:complexType>
  </xs:element>
</xs:schema>
EOF

cat > "$tmp/doc.xml" <<'EOF'
<library><book><title>One</title><year>2001</year></book><book><title>Two</title><year>2002</year></book></library>
EOF

cat > "$tmp/bad.xml" <<'EOF'
<library><book><title>One</title><year>notayear</year></book></library>
EOF

# --- validate: tree and stream agree on the verdict, stdin works
"$XSM" validate "$tmp/schema.xsd" "$tmp/doc.xml" >/dev/null 2>&1 \
  || fail "tree validate rejected a valid document"
"$XSM" validate "$tmp/schema.xsd" "$tmp/doc.xml" --stream >/dev/null 2>&1 \
  || fail "stream validate rejected a valid document"
"$XSM" validate "$tmp/schema.xsd" - < "$tmp/doc.xml" >/dev/null 2>&1 \
  || fail "stdin tree validate failed"
"$XSM" validate "$tmp/schema.xsd" - --stream < "$tmp/doc.xml" >/dev/null 2>&1 \
  || fail "stdin stream validate failed"

out=$("$XSM" validate "$tmp/schema.xsd" - --stream < "$tmp/bad.xml" 2>&1)
[ $? -eq 1 ] || fail "stream validate must exit 1 on an invalid document"
echo "$out" | grep -q "line 1," || fail "streaming diagnostic must carry a position (got: $out)"
echo "$out" | grep -q "/library/book\[1\]/year\[2\]" || fail "streaming diagnostic must carry the tree path (got: $out)"

printf '<library><book><title>x' | "$XSM" validate "$tmp/schema.xsd" - --stream >/dev/null 2>&1
[ $? -eq 2 ] || fail "malformed stdin must exit 2"

# --- load: round-trip, integrity, stats
"$XSM" load "$tmp/doc.xml" --stats --print > "$tmp/load.out" 2>&1 \
  || fail "load failed"
grep -q "integrity ok" "$tmp/load.out" || fail "load --stats must report integrity"
grep -q "<title>One</title>" "$tmp/load.out" || fail "load --print must serialize the document"
"$XSM" load - --schema "$tmp/schema.xsd" < "$tmp/doc.xml" >/dev/null 2>&1 \
  || fail "stdin load with schema failed"

# --- load with WAL + snapshot: clean run recovers to the same state
"$XSM" load "$tmp/doc.xml" --wal "$tmp/w.wal" --snapshot "$tmp/s.snap" --print > "$tmp/direct.xml" 2>/dev/null \
  || fail "logged load failed"
"$XSM" recover "$tmp/s.snap" --wal "$tmp/w.wal" --print > "$tmp/rec.xml" 2>/dev/null \
  || fail "recover after load failed"
cmp -s "$tmp/direct.xml" "$tmp/rec.xml" || fail "recovered state differs from the loaded document"

# --- injected crash after 1 record: exit 3, recovery yields root + first book
"$XSM" load "$tmp/doc.xml" --wal "$tmp/wc.wal" --snapshot "$tmp/sc.snap" --crash-after 1 >/dev/null 2>&1
[ $? -eq 3 ] || fail "injected crash during load must exit 3"
"$XSM" recover "$tmp/sc.snap" --wal "$tmp/wc.wal" --print > "$tmp/crash_rec.xml" 2>/dev/null \
  || fail "recovery after load crash failed"
grep -q "<title>One</title>" "$tmp/crash_rec.xml" || fail "first subtree must survive the crash"
grep -q "<title>Two</title>" "$tmp/crash_rec.xml" && fail "unlogged subtree must not survive the crash"

# --- differential index feed during the load
"$XSM" load "$tmp/doc.xml" --index --query /library/book/title > "$tmp/idx.out" 2> "$tmp/idx.err" \
  || fail "indexed load failed"
grep -q "One" "$tmp/idx.out" || fail "query over the loaded index must answer"
grep '^{"maintenance"' "$tmp/idx.err" | jq -e '.maintenance.applied >= 1' >/dev/null \
  || fail "planner must report differential maintenance"

echo "cli stream tests passed"
