#!/usr/bin/env bash
# End-to-end durability checks through the xsm binary: script error
# reporting (exit 1 with the offending line), snapshot+WAL recovery of
# a clean run, crash injection (exit 3) with prefix recovery and log
# repair, and the index-resume path.
set -u
XSM="$1"
tmp=$(mktemp -d)
trap 'rm -rf "$tmp"' EXIT
fail() { echo "FAIL: $1" >&2; exit 1; }

cat > "$tmp/doc.xml" <<'EOF'
<library><book><title>One</title></book><book><title>Two</title></book></library>
EOF

# --- script robustness: malformed lines name their location, exit 1
cat > "$tmp/bad.upd" <<'EOF'
insert /library <book><title>Three</title></book>
frobnicate /library
EOF
out=$("$XSM" update "$tmp/doc.xml" "$tmp/bad.upd" 2>&1)
[ $? -eq 1 ] || fail "malformed script line must exit 1"
echo "$out" | grep -q "bad.upd:2" || fail "error must name the script line (got: $out)"
echo "$out" | grep -q "frobnicate /library" || fail "error must quote the offending source line (got: $out)"

printf 'insert\n' > "$tmp/bad2.upd"
out=$("$XSM" update "$tmp/doc.xml" "$tmp/bad2.upd" 2>&1)
[ $? -eq 1 ] || fail "missing argument must exit 1"
echo "$out" | grep -q "bad2.upd:1" || fail "missing argument must name the line (got: $out)"

cat > "$tmp/bad3.upd" <<'EOF'
insert /library <book><title>unclosed
EOF
"$XSM" update "$tmp/doc.xml" "$tmp/bad3.upd" >/dev/null 2>&1
[ $? -eq 1 ] || fail "unparsable fragment must exit 1"

"$XSM" update "$tmp/doc.xml" "$tmp/bad.upd" --wal "$tmp/unused.wal" --crash-after 5 --crash-partial 0 >/dev/null 2>&1
st=$?
[ $st -eq 1 ] || fail "script error must win over a later crash point (got $st)"
"$XSM" update "$tmp/doc.xml" "$tmp/bad.upd" --crash-after 1 >/dev/null 2>&1
[ $? -eq 2 ] || fail "--crash-after without --wal must exit 2"

# --- clean run: snapshot + WAL replays to the same final state
cat > "$tmp/good.upd" <<'EOF'
insert /library <book><title>Three</title></book>
attr /library/book id b1
sync
content /library/book/title/text() Uno
delete /library/book/title
EOF
"$XSM" update "$tmp/doc.xml" "$tmp/good.upd" --wal "$tmp/w.wal" --snapshot "$tmp/s.snap" --print > "$tmp/direct.xml" 2>/dev/null \
  || fail "logged update run failed"
"$XSM" recover "$tmp/s.snap" --wal "$tmp/w.wal" --print > "$tmp/rec.xml" 2>/dev/null \
  || fail "recover failed"
cmp -s "$tmp/direct.xml" "$tmp/rec.xml" || fail "recovered state differs from the direct run"

# --- injected crash: exit 3, recovery restores the fully-written prefix
"$XSM" update "$tmp/doc.xml" "$tmp/good.upd" --wal "$tmp/wc.wal" --snapshot "$tmp/sc.snap" --crash-after 2 --crash-partial 11 >/dev/null 2>&1
[ $? -eq 3 ] || fail "injected crash must exit 3"
"$XSM" recover "$tmp/sc.snap" --wal "$tmp/wc.wal" --print > "$tmp/crash_rec.xml" 2> "$tmp/crash_rec.err" \
  || fail "recovery after crash failed"
grep -q "torn tail" "$tmp/crash_rec.err" || fail "torn tail not reported"

head -2 "$tmp/good.upd" > "$tmp/prefix.upd"
"$XSM" update "$tmp/doc.xml" "$tmp/prefix.upd" --print > "$tmp/prefix.xml" 2>/dev/null \
  || fail "prefix reference run failed"
cmp -s "$tmp/prefix.xml" "$tmp/crash_rec.xml" || fail "crash recovery must restore the 2-op prefix"

# recovery repaired the log: a second pass sees no torn tail
"$XSM" recover "$tmp/sc.snap" --wal "$tmp/wc.wal" >/dev/null 2> "$tmp/second.err" || fail "re-recover failed"
grep -q "torn" "$tmp/second.err" && fail "log was not repaired on disk"

# --- index resume: the planner absorbs the replay without a rebuild
"$XSM" recover "$tmp/s.snap" --wal "$tmp/w.wal" --index --query /library/book/title > /dev/null 2> "$tmp/idx.err" \
  || fail "index resume failed"
grep '^{"maintenance"' "$tmp/idx.err" | jq -e '.maintenance.epochs == 1' >/dev/null \
  || fail "planner must absorb the replay differentially (epochs=1)"

echo "cli durability tests passed"
