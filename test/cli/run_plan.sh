#!/usr/bin/env bash
# Cost-based planning surface: `xsm analyze --cost` prices a query from
# the schema alone, `xsm query --index --explain` reports the chosen
# route with estimated vs. actual rows.  All assertions parse the JSON
# payloads with jq — the prose lines are presentation, not contract.
set -u

XSM="$1"
tmp=$(mktemp -d)
trap 'rm -rf "$tmp"' EXIT
fail() { echo "run_plan.sh: $1" >&2; exit 1; }

cat > "$tmp/doc.xml" <<'EOF'
<shop>
  <item><name>apple</name><price>3</price></item>
  <item><name>brick</name><price>7</price></item>
  <item><name>chalk</name><price>7</price></item>
</shop>
EOF

cat > "$tmp/shop.xsd" <<'EOF'
<?xml version="1.0"?>
<xsd:schema xmlns:xsd="http://www.w3.org/2001/XMLSchema">
  <xsd:complexType name="Item">
    <xsd:sequence>
      <xsd:element name="name" type="xs:string"/>
      <xsd:element name="price" type="xs:nonNegativeInteger"/>
    </xsd:sequence>
  </xsd:complexType>
  <xsd:element name="shop">
    <xsd:complexType>
      <xsd:sequence>
        <xsd:element name="item" type="Item" minOccurs="0" maxOccurs="unbounded"/>
      </xsd:sequence>
    </xsd:complexType>
  </xsd:element>
</xsd:schema>
EOF

# sequence (header, (note?), (note)) is UPA-ambiguous
cat > "$tmp/ambiguous.xsd" <<'EOF'
<?xml version="1.0"?>
<xsd:schema xmlns:xsd="http://www.w3.org/2001/XMLSchema">
  <xsd:element name="memo">
    <xsd:complexType>
      <xsd:sequence>
        <xsd:element name="header" type="xs:string"/>
        <xsd:sequence>
          <xsd:element name="note" type="xs:string" minOccurs="0"/>
        </xsd:sequence>
        <xsd:sequence>
          <xsd:element name="note" type="xs:token"/>
        </xsd:sequence>
      </xsd:sequence>
    </xsd:complexType>
  </xsd:element>
</xsd:schema>
EOF

# --- query --explain: structural path, exact estimate, index route
"$XSM" query "$tmp/doc.xml" '/shop/item/name' --index --explain > "$tmp/e1.json" 2>/dev/null \
  || fail "explain failed"
[ "$(wc -l < "$tmp/e1.json")" -eq 1 ] || fail "--explain stdout must be one JSON line"
jq -e '.route == "index" and .actual_rows == 3 and .in_interval == true and .abs_error == 0' \
  "$tmp/e1.json" >/dev/null || fail "structural explain: exact estimate expected"
jq -e '.maintenance.epochs == 1' "$tmp/e1.json" >/dev/null \
  || fail "explain must embed maintenance stats"

# --- value predicate: a strategy decision is recorded with both prices
"$XSM" query "$tmp/doc.xml" '/shop/item[price="7"]/name' --index --explain > "$tmp/e2.json" 2>/dev/null \
  || fail "value-predicate explain failed"
jq -e '.route == "index" and .actual_rows == 2 and .in_interval == true' "$tmp/e2.json" >/dev/null \
  || fail "value-predicate explain: wrong route or rows"
jq -e '.decisions | length >= 1' "$tmp/e2.json" >/dev/null \
  || fail "cost policy must record a strategy decision"
jq -e '.decisions[0] | (.chosen == "probe" or .chosen == "residual")
        and .indexed_cost >= 0 and .residual_cost >= 0' "$tmp/e2.json" >/dev/null \
  || fail "decision must carry both candidate prices"

# --- positional predicates route to the fallback evaluator
"$XSM" query "$tmp/doc.xml" '/shop/item[last()-1]/name' --index --explain > "$tmp/e3.json" 2>/dev/null \
  || fail "positional explain failed"
jq -e '.route == "fallback" and .actual_rows == 1' "$tmp/e3.json" >/dev/null \
  || fail "positional query must fall back (with its actual count)"
"$XSM" query "$tmp/doc.xml" '/shop/item[last()-1]/name' --index 2>/dev/null | grep -q brick \
  || fail "last()-1 must select the middle item"

# --- schema folding: the always-true comparison disappears from the plan
"$XSM" query "$tmp/doc.xml" '/shop/item[price>=0]/name' --index --schema "$tmp/shop.xsd" --explain \
  > "$tmp/e4.json" 2>/dev/null || fail "folding explain failed"
jq -e '.rewritten == "/shop/item/name" and .actual_rows == 3 and (.decisions | length == 0)' \
  "$tmp/e4.json" >/dev/null || fail "always-true predicate must fold away"

# --- schema pruning still reports through the JSON surface
"$XSM" query "$tmp/doc.xml" '/shop/basket' --index --schema "$tmp/shop.xsd" --explain \
  > "$tmp/e5.json" 2>/dev/null || fail "pruned explain failed"
jq -e '.route == "pruned" and .actual_rows == 0' "$tmp/e5.json" >/dev/null \
  || fail "statically empty query must report the pruned route"

# --- analyze --cost: schema-only pricing, one JSON object on stdout
"$XSM" analyze "$tmp/shop.xsd" --query '/shop/item[price="7"]/name' --cost > "$tmp/a1.json" 2>/dev/null \
  || fail "analyze --cost failed"
[ "$(wc -l < "$tmp/a1.json")" -eq 1 ] || fail "--cost stdout must be one JSON line"
jq -e '.supported == true and .rows.lo == 0 and .eval_cost > 0' "$tmp/a1.json" >/dev/null \
  || fail "analyze --cost: wrong shape"
jq -e '.estimate.steps | length == 3' "$tmp/a1.json" >/dev/null \
  || fail "analyze --cost must annotate every step"

# --cost requires --query
"$XSM" analyze "$tmp/shop.xsd" --cost >/dev/null 2>&1 && fail "--cost without --query must fail"

# a broken schema still exits 2, --cost or not
"$XSM" analyze "$tmp/ambiguous.xsd" --query '/memo/note' --cost >/dev/null 2>&1
[ $? -eq 2 ] || fail "ambiguous schema must exit 2 under --cost"

echo "cli plan tests passed"
