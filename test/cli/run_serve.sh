#!/usr/bin/env bash
# End-to-end checks of the session daemon through the xsm binary:
# serve/client round-trips, the graceful-shutdown checkpoint
# (snapshot written, WAL removed, recover reproduces the final
# state), crash recovery from the WAL alone after SIGKILL, corrupt
# WAL refusal at boot (exit 3), and the bench-serve smoke run.
set -u
XSM="$1"
tmp=$(mktemp -d)
server_pid=""
cleanup() {
  [ -n "$server_pid" ] && kill -9 "$server_pid" 2>/dev/null
  rm -rf "$tmp"
}
trap cleanup EXIT
fail() { echo "FAIL: $1" >&2; exit 1; }

sock="$tmp/s.sock"

# wait until the daemon answers the handshake (or die with its log)
await() {
  for _ in $(seq 1 100); do
    if "$XSM" client --socket "$sock" --stats >/dev/null 2>&1; then return 0; fi
    kill -0 "$server_pid" 2>/dev/null || { cat "$tmp/serve.log" >&2; fail "server exited during startup"; }
    sleep 0.05
  done
  cat "$tmp/serve.log" >&2
  fail "server did not come up"
}

cat > "$tmp/doc.xml" <<'EOF'
<library><book id="b1"><title>One</title></book><book id="b2"><title>Two</title></book></library>
EOF

# --- sessions: query, update, query again sees the new state
"$XSM" serve --socket "$sock" --doc "$tmp/doc.xml" --wal "$tmp/w.wal" \
  --snapshot "$tmp/s.snap" --domains 2 > "$tmp/serve.log" 2>&1 &
server_pid=$!
await

out=$("$XSM" client --socket "$sock" --query '//title' 2>/dev/null)
[ "$out" = "$(printf 'One\nTwo')" ] || fail "initial query (got: $out)"

"$XSM" client --socket "$sock" --update 'insert /library <book id="b3"><title>Three</title></book>' \
  >/dev/null 2>&1 || fail "insert over the session failed"
"$XSM" client --socket "$sock" --update 'content /library/book/title/text() Uno' \
  >/dev/null 2>&1 || fail "content over the session failed"

out=$("$XSM" client --socket "$sock" --query '//title' 2>/dev/null)
[ "$out" = "$(printf 'Uno\nTwo\nThree')" ] || fail "post-update query (got: $out)"

"$XSM" client --socket "$sock" --stats 2>/dev/null | grep -q '"submissions"' \
  || fail "stats must report commit counters"

# --- graceful shutdown: checkpoint = snapshot written, WAL removed
"$XSM" client --socket "$sock" --shutdown >/dev/null 2>&1 || fail "shutdown request failed"
wait "$server_pid" || fail "server exited non-zero after shutdown"
server_pid=""
[ -f "$tmp/s.snap" ] || fail "graceful shutdown must write the snapshot"
[ ! -f "$tmp/w.wal" ] || fail "the checkpoint must remove the subsumed WAL"
out=$("$XSM" recover "$tmp/s.snap" --query '//title' 2>/dev/null)
[ "$out" = "$(printf 'Uno\nTwo\nThree')" ] || fail "recover after shutdown (got: $out)"

# --- serve -> SIGKILL: the WAL alone carries the committed updates
"$XSM" snapshot "$tmp/doc.xml" "$tmp/base.snap" >/dev/null 2>&1 || fail "base snapshot failed"
"$XSM" serve --socket "$sock" --snapshot "$tmp/base.snap" --wal "$tmp/wc.wal" \
  --domains 2 > "$tmp/serve.log" 2>&1 &
server_pid=$!
await
"$XSM" client --socket "$sock" --update 'attr /library crashed yes' >/dev/null 2>&1 \
  || fail "update before crash failed"
kill -9 "$server_pid"
wait "$server_pid" 2>/dev/null
server_pid=""
[ -f "$tmp/wc.wal" ] || fail "the WAL must survive a crash"
out=$("$XSM" recover "$tmp/base.snap" --wal "$tmp/wc.wal" --query '/library/@crashed' 2>/dev/null)
[ "$out" = "yes" ] || fail "crash recovery must replay the committed update (got: $out)"

# --- a snapshot paired with garbage where the WAL should be: exit 3
printf 'not a wal at all' > "$tmp/bad.wal"
"$XSM" serve --socket "$sock" --snapshot "$tmp/base.snap" --wal "$tmp/bad.wal" \
  > "$tmp/serve.log" 2>&1
[ $? -eq 3 ] || fail "corrupt WAL at boot must exit 3"
grep -q "not a WAL file" "$tmp/serve.log" || fail "corrupt WAL must be named in the error"

# --- SIGTERM is a graceful stop too
"$XSM" serve --socket "$sock" --doc "$tmp/doc.xml" --snapshot "$tmp/t.snap" \
  > "$tmp/serve.log" 2>&1 &
server_pid=$!
await
kill -TERM "$server_pid"
wait "$server_pid" || fail "SIGTERM must stop the server cleanly"
server_pid=""
[ -f "$tmp/t.snap" ] || fail "SIGTERM must still write the checkpoint snapshot"

# --- bench-serve smoke: spawns its own server, reports percentiles
out=$("$XSM" bench-serve --smoke 2>&1) || { echo "$out" >&2; fail "bench-serve --smoke failed"; }
echo "$out" | grep -q "p50=" || fail "bench-serve must report percentiles (got: $out)"
echo "$out" | grep -q "commit:" || fail "bench-serve must report commit batching (got: $out)"

echo "serve CLI: OK"
