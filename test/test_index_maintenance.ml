(* Differential index maintenance: a planner subscribed to an update
   journal keeps answering exactly like the naive evaluator — and like
   a planner rebuilt from scratch — without rebuilding, across
   inserts, deletes, content replacement and attribute updates. *)

module Store = Xsm_xdm.Store
module Convert = Xsm_xdm.Convert
module Tree = Xsm_xml.Tree
module Name = Xsm_xml.Name
module E = Xsm_xpath.Eval.Over_store
module Pl = Xsm_xpath.Planner.Over_store
module Gen = Xsm_schema.Generator
module Update = Xsm_schema.Update
module Journal = Xsm_schema.Update.Journal

let check = Alcotest.(check bool)
let check_int = Alcotest.(check int)

let check_store_nodes msg a b =
  Alcotest.(check (list int)) msg (List.map Store.node_id a) (List.map Store.node_id b)

let library ?(books = 20) ?(papers = 10) () =
  let store = Store.create () in
  let dnode =
    Convert.load store (Xsm_schema.Samples.library_document ~books ~papers ())
  in
  (store, dnode)

let live_planner store dnode =
  let planner = Pl.create store dnode in
  let journal = Journal.create () in
  Xsm_xpath.Planner.attach_journal planner journal;
  (planner, journal)

let apply_exn journal store op =
  match Update.apply ~journal store op with
  | Ok applied -> applied
  | Error e -> Alcotest.fail e

let queries =
  [
    "//author";
    "/library/book/title";
    "//book[issue/year<1990]/title";
    "//book[issue/year>=1985]//year";
    "//book[issue]/author";
    "/library//publisher";
    "//text()";
  ]

let agree planner store dnode q =
  let naive =
    match E.eval_string store dnode q with Ok ns -> ns | Error e -> Alcotest.fail e
  in
  match Pl.eval_string planner q with
  | Ok ns -> check_store_nodes q naive ns
  | Error e -> Alcotest.failf "%s: %s" q e

let agree_all planner store dnode = List.iter (agree planner store dnode) queries

(* the maintained index holds exactly the entries a from-scratch build
   would: same entry count (pnode counts may differ — maintenance keeps
   emptied path nodes around, a rebuild never learns about them) *)
let same_as_rebuild planner store dnode =
  let fresh = Pl.create store dnode in
  check_int "maintained entry count = rebuilt entry count"
    (Pl.PI.entry_count (Pl.index fresh))
    (Pl.PI.entry_count (Pl.index planner))

let book_tree i =
  Tree.elem "book"
    ~children:
      [
        Tree.element (Tree.elem "title" ~children:[ Tree.text (Printf.sprintf "Fresh %d" i) ]);
        Tree.element (Tree.elem "author" ~children:[ Tree.text "Maintainer" ]);
        Tree.element
          (Tree.elem "issue"
             ~children:
               [
                 Tree.element
                   (Tree.elem "year" ~children:[ Tree.text (string_of_int (1950 + i)) ]);
                 Tree.element
                   (Tree.elem "publisher" ~children:[ Tree.text "Inc HQ" ]);
               ]);
      ]

(* ---------------- the journal itself ---------------- *)

let test_journal_records () =
  let store, dnode = library ~books:2 ~papers:1 () in
  let journal = Journal.create () in
  let libr = List.hd (Store.children store dnode) in
  check_int "empty journal" 0 (Journal.length journal);
  let applied =
    apply_exn journal store
      (Update.Insert_element { parent = libr; before = None; tree = book_tree 0 })
  in
  check_int "insert recorded" 1 (Journal.length journal);
  Update.undo ~journal store applied;
  check_int "undo records its mirror" 2 (Journal.length journal);
  (match Journal.drain journal with
  | [ Journal.Inserted a; Journal.Deleted b ] ->
    check "mirror names the same node" true (Store.equal_node a b)
  | _ -> Alcotest.fail "expected [Inserted; Deleted]");
  check_int "drain empties" 0 (Journal.length journal);
  (* unjournaled applications leave the journal untouched *)
  ignore
    (match
       Update.apply store
         (Update.Insert_element { parent = libr; before = None; tree = book_tree 1 })
     with
    | Ok a -> a
    | Error e -> Alcotest.fail e);
  check_int "no journal, no entry" 0 (Journal.length journal)

(* ---------------- structural maintenance ---------------- *)

let test_incremental_updates () =
  let store, dnode = library () in
  let planner, journal = live_planner store dnode in
  agree_all planner store dnode;
  let libr = List.hd (Store.children store dnode) in
  (* insert a whole subtree *)
  ignore
    (apply_exn journal store
       (Update.Insert_element { parent = libr; before = None; tree = book_tree 1 }));
  agree_all planner store dnode;
  (* insert before an anchor (exercises label-between) *)
  let anchor = List.nth (Store.children store libr) 3 in
  ignore
    (apply_exn journal store
       (Update.Insert_element { parent = libr; before = Some anchor; tree = book_tree 2 }));
  agree_all planner store dnode;
  (* delete a subtree *)
  ignore (apply_exn journal store (Update.Delete (List.nth (Store.children store libr) 5)));
  agree_all planner store dnode;
  (* replace a text's content *)
  let a_text =
    List.find
      (fun n -> Store.kind store n = Store.Kind.Text)
      (Store.descendants_or_self store dnode)
  in
  ignore
    (apply_exn journal store (Update.Replace_content { node = a_text; value = "2001" }));
  agree_all planner store dnode;
  (* attach a fresh attribute, then overwrite it *)
  let an_elem = List.hd (Store.children store libr) in
  ignore
    (apply_exn journal store
       (Update.Set_attribute { element = an_elem; name = Name.local "tag"; value = "a" }));
  ignore
    (apply_exn journal store
       (Update.Set_attribute { element = an_elem; name = Name.local "tag"; value = "b" }));
  agree_all planner store dnode;
  same_as_rebuild planner store dnode;
  let stats = Pl.maintenance_stats planner in
  check_int "never rebuilt" 1 stats.Xsm_xpath.Planner.epochs;
  check "changes were absorbed incrementally" true (stats.Xsm_xpath.Planner.applied >= 6)

let test_batched_replay () =
  (* many updates between two evaluations: the journal drains once, in
     order, against the final store state — including an insert whose
     subtree is deleted again before the planner ever looks *)
  let store, dnode = library () in
  let planner, journal = live_planner store dnode in
  agree_all planner store dnode;
  let libr = List.hd (Store.children store dnode) in
  ignore
    (apply_exn journal store
       (Update.Insert_element { parent = libr; before = None; tree = book_tree 7 }));
  let doomed = List.nth (Store.children store libr) 0 in
  ignore (apply_exn journal store (Update.Delete doomed));
  let newest = List.rev (Store.children store libr) |> List.hd in
  ignore (apply_exn journal store (Update.Delete newest));
  ignore
    (apply_exn journal store
       (Update.Insert_element { parent = libr; before = None; tree = book_tree 8 }));
  check "journal is pending" true (Journal.length journal = 4);
  agree_all planner store dnode;
  same_as_rebuild planner store dnode;
  check_int "one batch, no rebuild" 1 (Pl.maintenance_stats planner).Xsm_xpath.Planner.epochs

(* ---------------- value index maintenance ---------------- *)

let test_value_index_maintenance () =
  let store, dnode = library () in
  let planner, journal = live_planner store dnode in
  let q = "//book[issue/year<1990]/title" in
  agree planner store dnode q;
  check_int "value index cached" 1 (Pl.value_index_count planner);
  (* flip a year across the predicate boundary *)
  let year_text =
    let years =
      match E.eval_string store dnode "//book/issue/year/text()" with
      | Ok ns -> ns
      | Error e -> Alcotest.fail e
    in
    List.hd years
  in
  ignore
    (apply_exn journal store (Update.Replace_content { node = year_text; value = "1800" }));
  agree planner store dnode q;
  ignore
    (apply_exn journal store (Update.Replace_content { node = year_text; value = "2100" }));
  agree planner store dnode q;
  (* a freshly inserted book must show up in the probe answers *)
  let libr = List.hd (Store.children store dnode) in
  ignore
    (apply_exn journal store
       (Update.Insert_element { parent = libr; before = None; tree = book_tree 3 }));
  agree planner store dnode q;
  (* ... and a deleted one must disappear from them *)
  ignore (apply_exn journal store (Update.Delete (List.hd (Store.children store libr))));
  agree planner store dnode q;
  let stats = Pl.maintenance_stats planner in
  check_int "maintained, not rebuilt" 1 stats.Xsm_xpath.Planner.epochs;
  check "the value index survived maintenance" true (Pl.value_index_count planner >= 1)

(* ---------------- the size-ratio heuristic ---------------- *)

let test_heuristic_falls_back_to_rebuild () =
  let store, dnode = library ~books:2 ~papers:1 () in
  let planner, journal = live_planner store dnode in
  agree_all planner store dnode;
  let libr = List.hd (Store.children store dnode) in
  (* a batch far larger than a quarter of this small index *)
  for i = 1 to 12 do
    ignore
      (apply_exn journal store
         (Update.Insert_element { parent = libr; before = None; tree = book_tree i }))
  done;
  agree_all planner store dnode;
  same_as_rebuild planner store dnode;
  let stats = Pl.maintenance_stats planner in
  check "big batch triggered a rebuild" true (stats.Xsm_xpath.Planner.epochs > 1)

(* ---------------- random sequences, every prefix ---------------- *)

let random_journaled_op store dnode journal rng step =
  let int = Gen.int in
  let elements =
    List.filter
      (fun n -> Store.kind store n = Store.Kind.Element)
      (Store.descendants_or_self store dnode)
  in
  let pick_elem () = List.nth elements (int rng (List.length elements)) in
  let deletable =
    List.filter
      (fun n ->
        match Store.parent store n with
        | Some p -> not (Store.equal_node p dnode)
        | None -> false)
      elements
  in
  let op =
    match int rng 6 with
    | 0 ->
      Update.Insert_element
        { parent = pick_elem (); before = None; tree = book_tree step }
    | 1 ->
      Update.Insert_text { parent = pick_elem (); before = None; text = "interleaved" }
    | 2 when deletable <> [] ->
      (* delete a whole random subtree, not just leaves *)
      Update.Delete (List.nth deletable (int rng (List.length deletable)))
    | 3 -> (
      let texts =
        List.filter
          (fun n -> Store.kind store n = Store.Kind.Text)
          (Store.descendants_or_self store dnode)
      in
      match texts with
      | [] -> Update.Insert_text { parent = pick_elem (); before = None; text = "t" }
      | ts ->
        Update.Replace_content
          { node = List.nth ts (int rng (List.length ts)); value = string_of_int (1900 + step) })
    | _ ->
      Update.Set_attribute
        { element = pick_elem (); name = Name.local "m"; value = string_of_int step }
  in
  ignore (Update.apply ~journal store op)

let test_property_prefixes () =
  let rng = Gen.rng 4242 in
  for _ = 1 to 12 do
    let store, dnode = library ~books:4 ~papers:2 () in
    let planner, journal = live_planner store dnode in
    for step = 1 to 6 do
      random_journaled_op store dnode journal rng step;
      (* every prefix of the sequence: maintained = naive = rebuilt *)
      agree_all planner store dnode;
      same_as_rebuild planner store dnode
    done
  done

let suite =
  [
    ( "index.maintenance",
      [
        Alcotest.test_case "journal records and drains" `Quick test_journal_records;
        Alcotest.test_case "incremental updates" `Quick test_incremental_updates;
        Alcotest.test_case "batched replay" `Quick test_batched_replay;
        Alcotest.test_case "value index upkeep" `Quick test_value_index_maintenance;
        Alcotest.test_case "size-ratio heuristic" `Quick test_heuristic_falls_back_to_rebuild;
        Alcotest.test_case "random prefixes" `Quick test_property_prefixes;
      ] );
  ]
