(* The disk-paged storage engine:

   - page file blob round-trips, free-list reuse, corruption detection
     and the clean-flag contract;
   - 2Q replacement: ghost promotion into Am, scan resistance, pin
     overflow past capacity;
   - WAL-ordered write-back: a dirty page flush forces the covering
     records durable first, and a crash-point sweep over a paged bulk
     load asserts no on-disk page ever carries an LSN beyond the WAL's
     synced prefix;
   - checkpoint / of_page_file reopen round-trip;
   - the law: a storage paged through a 2-block pool is observationally
     equal to the in-memory storage under random update sequences. *)

module Q = QCheck
module Pf = Xsm_pager.Page_file
module Pager = Xsm_pager.Pager
module Name = Xsm_xml.Name
module Tree = Xsm_xml.Tree
module Printer = Xsm_xml.Printer
module Store = Xsm_xdm.Store
module Convert = Xsm_xdm.Convert
module Gen = Xsm_schema.Generator
module Bs = Xsm_storage.Block_storage
module Wal = Xsm_persist.Wal
module Sax = Xsm_stream.Sax
module BL = Xsm_stream.Bulk_load

let check = Alcotest.(check bool)
let check_int = Alcotest.(check int)
let check_str = Alcotest.(check string)

let tmp_page_file () = Filename.temp_file "xsm-pager" ".pages"

let with_tmp f =
  let path = tmp_page_file () in
  Fun.protect ~finally:(fun () -> if Sys.file_exists path then Sys.remove path) (fun () -> f path)

(* ---------------- page file ---------------- *)

let page_file_roundtrip () =
  with_tmp @@ fun path ->
  let pf = Pf.create ~page_size:512 path in
  check "fresh file is not clean" false (Pf.clean pf);
  let small = String.make 10 'a' in
  let big = String.init 5000 (fun i -> Char.chr (i mod 256)) in
  let h1 = Pf.write_blob pf ~lsn:3 small in
  let h2 = Pf.write_blob pf ~lsn:7 big in
  check_str "small round-trips" small (fst (Pf.read_blob pf h1));
  let payload, lsn = Pf.read_blob pf h2 in
  check_str "overflow chain round-trips" big payload;
  check_int "lsn stamped" 7 lsn;
  (* rewriting a blob in place reuses its chain *)
  let pages_before = Pf.page_count pf in
  let h2' = Pf.write_blob pf ~head:h2 ~lsn:9 (String.make 4000 'b') in
  check_int "rewrite keeps the head" h2 h2';
  check_int "shrinking rewrite allocates nothing" pages_before (Pf.page_count pf);
  (* the freed tail pages satisfy the next allocation *)
  let h3 = Pf.write_blob pf ~lsn:9 (String.make 900 'c') in
  check_int "free list reused" pages_before (Pf.page_count pf);
  Pf.close pf;
  let pf = Pf.open_existing path in
  check_str "reopen reads the rewrite" (String.make 4000 'b') (fst (Pf.read_blob pf h2));
  check_str "reopen reads the reuse" (String.make 900 'c') (fst (Pf.read_blob pf h3));
  Pf.close pf

let page_file_corruption () =
  with_tmp @@ fun path ->
  let pf = Pf.create ~page_size:512 path in
  let h = Pf.write_blob pf ~lsn:1 (String.make 300 'x') in
  Pf.close pf;
  (* flip one payload byte behind the header of the blob's page *)
  let fd = Unix.openfile path [ Unix.O_RDWR ] 0 in
  ignore (Unix.lseek fd ((h * 512) + 100) Unix.SEEK_SET);
  ignore (Unix.write fd (Bytes.of_string "\xff") 0 1);
  Unix.close fd;
  let pf = Pf.open_existing path in
  check "CRC catches the flip" true
    (match Pf.read_blob pf h with exception Pf.Corrupt _ -> true | _ -> false);
  Pf.close pf;
  (* a damaged header is refused outright *)
  let fd = Unix.openfile path [ Unix.O_RDWR ] 0 in
  ignore (Unix.write fd (Bytes.of_string "GARBAGE!") 0 8);
  Unix.close fd;
  check "bad magic refused" true
    (match Pf.open_existing path with exception Pf.Corrupt _ -> true | _ -> false)

let page_file_clean_flag () =
  with_tmp @@ fun path ->
  let pf = Pf.create path in
  let h = Pf.write_blob pf ~lsn:1 "payload" in
  Pf.set_checkpoint pf ~lsn:1 ~meta_page:h;
  check "checkpoint sets clean" true (Pf.clean pf);
  Pf.close pf;
  let pf = Pf.open_existing path in
  check "clean survives reopen" true (Pf.clean pf);
  check_int "checkpoint lsn survives" 1 (Pf.checkpoint_lsn pf);
  ignore (Pf.write_blob pf ~lsn:2 "more");
  check "any write clears clean" false (Pf.clean pf);
  Pf.close pf;
  let pf = Pf.open_existing path in
  check "cleared flag survives reopen" false (Pf.clean pf);
  Pf.close pf

(* ---------------- 2Q replacement over synthetic blocks ---------------- *)

(* handlers over a value table: eviction drops nothing the test cares
   about, so residency transitions are fully observable via stats *)
let synthetic_pager ?wal ~capacity path =
  let values = Hashtbl.create 16 in
  let handlers =
    {
      Pager.serialize = (fun id -> Hashtbl.find values id);
      deserialize =
        (fun id payload ->
          let expected = Hashtbl.find values id in
          if payload <> expected then
            Alcotest.failf "block %d restored %S, expected %S" id payload expected);
      on_evict = (fun _ -> ());
    }
  in
  let pf = Pf.create ~page_size:512 path in
  let p = Pager.create ~capacity ~handlers ?wal pf in
  let add id =
    Hashtbl.replace values id (Printf.sprintf "block-%d-payload" id);
    Pager.register_new p id
  in
  (p, pf, add)

let twoq_ghost_promotion () =
  with_tmp @@ fun path ->
  (* capacity 4: A1in keeps at least 1 frame, ghosts up to 2 *)
  let p, pf, add = synthetic_pager ~capacity:4 path in
  List.iter add [ 1; 2; 3; 4 ];
  Pager.reset_stats p;
  add 5;
  (* room was made by evicting the A1in FIFO tail: block 1 *)
  check_int "one eviction" 1 (Pager.stats p).Pager.evictions;
  check "evicted block faults" true (Pager.touch p 1 = `Miss);
  (* that fault hit 1's ghost entry: it is now in Am.  Stream new
     blocks through A1in; the working-set member must survive. *)
  List.iter add [ 6; 7; 8; 9; 10 ];
  check "ghost-promoted block survives the stream" true (Pager.touch p 1 = `Hit);
  Pager.clear p;
  Pf.close pf

let twoq_scan_resistance () =
  with_tmp @@ fun path ->
  let p, pf, add = synthetic_pager ~capacity:4 path in
  List.iter add [ 1; 2; 3; 4 ];
  (* push 1 out, then fault it back with the scan hint: the ghost hit
     must NOT promote it to Am *)
  add 5;
  ignore (Pager.touch ~scan:true p 1);
  (* pressure evicts from A1in first — a scan-tagged block churns out
     with the FIFO, an Am resident would have survived *)
  List.iter add [ 6; 7; 8; 9 ];
  check "scan-tagged fault did not earn the working set" true (Pager.touch p 1 = `Miss);
  Pager.clear p;
  Pf.close pf

let pin_overflow () =
  with_tmp @@ fun path ->
  let p, pf, add = synthetic_pager ~capacity:2 path in
  add 1;
  add 2;
  check "pin 1" true (Pager.touch ~pin:true p 1 = `Hit);
  check "pin 2" true (Pager.touch ~pin:true p 2 = `Hit);
  (* every frame pinned: admission must overflow, not fail *)
  add 3;
  let s = Pager.stats p in
  check_int "admitted past capacity" 3 s.Pager.resident;
  check "overflow counted" true (s.Pager.pin_overflows >= 1);
  Pager.unpin p 1;
  Pager.unpin p 2;
  add 4;
  check "unpinned frames evictable again" true ((Pager.stats p).Pager.resident <= 3);
  check "double unpin refused" true
    (match Pager.unpin p 1 with exception Invalid_argument _ -> true | _ -> false);
  Pager.clear p;
  Pf.close pf

let wal_ordered_write_back () =
  with_tmp @@ fun path ->
  let synced = ref 0 and current = ref 10 in
  let forced = ref [] in
  let wal =
    {
      Pager.current_lsn = (fun () -> !current);
      synced_lsn = (fun () -> !synced);
      force =
        (fun lsn ->
          forced := lsn :: !forced;
          synced := max !synced lsn);
    }
  in
  let p, pf, add = synthetic_pager ~wal ~capacity:2 path in
  add 1;
  add 2;
  Pager.mark_dirty p 1 ~lsn:7;
  (* pressure steals block 1; its LSN is past the synced prefix, so
     the flush must force the WAL first *)
  add 3;
  check "force called for the covering LSN" true (List.mem 7 !forced);
  check_int "WAL synced before the page hit disk" 7 !synced;
  (match Pager.blob_head p 1 with
  | Some h ->
    let _, lsn = Pf.read_blob pf h in
    check_int "page stamped with its LSN" 7 lsn
  | None -> Alcotest.fail "dirty eviction must have written the block");
  (* a frame whose record is not even written yet is unstealable *)
  Pager.mark_dirty p 2 ~lsn:(!current + 1);
  Pager.mark_dirty p 3 ~lsn:(!current + 1);
  let before = (Pager.stats p).Pager.pin_overflows in
  add 4;
  check "unlogged frames overflow instead of flushing" true
    ((Pager.stats p).Pager.pin_overflows > before);
  check "no force past the current LSN" true (List.for_all (fun l -> l <= !current) !forced);
  Pager.clear p;
  Pf.close pf

(* ---------------- paged storage = in-memory storage ---------------- *)

(* random small XML tree (adjacent texts merged like a parser would) *)
let rec gen_element depth r =
  let name = Printf.sprintf "n%d" (Gen.int r 5) in
  let n_children = if depth = 0 then 0 else Gen.int r 4 in
  let raw =
    List.init n_children (fun i ->
        if Gen.int r 3 = 0 then Tree.Text (Printf.sprintf "t%d" i)
        else Tree.Element (gen_element (depth - 1) r))
  in
  let children =
    List.rev
      (List.fold_left
         (fun acc c ->
           match (c, acc) with
           | Tree.Text t, Tree.Text t' :: rest -> Tree.Text (t' ^ t) :: rest
           | c, acc -> c :: acc)
         [] raw)
  in
  let attrs =
    List.init (Gen.int r 3) (fun i ->
        Tree.attr (Printf.sprintf "a%d" i) (Printf.sprintf "v%d" (Gen.int r 10)))
  in
  Tree.elem name ~attrs ~children

(* preorder walks — identical structures yield identical orders, so a
   position picks "the same node" in both storages *)
let all_elements bs =
  let rec go d acc =
    let acc = if Bs.node_kind d = "element" then d :: acc else acc in
    List.fold_left (fun acc c -> go c acc) acc (Bs.children bs d)
  in
  List.rev (go (Bs.root bs) [])

let all_valued bs =
  let rec go d acc =
    let acc = List.rev_append (Bs.attributes bs d) acc in
    let acc = if Bs.node_kind d = "text" then d :: acc else acc in
    List.fold_left (fun acc c -> go c acc) acc (Bs.children bs d)
  in
  List.rev (go (Bs.root bs) [])

(* deletable leaves: never the document element itself, so the tree
   always keeps a root to insert under *)
let all_leaves bs =
  let rec go d acc =
    let acc = List.rev_append (Bs.attributes bs d) acc in
    let acc =
      if Bs.children bs d = [] && Bs.attributes bs d = [] then
        match Bs.parent d with
        | None -> acc
        | Some p when Bs.parent p = None && Bs.node_kind d = "element" -> acc
        | Some _ -> d :: acc
      else acc
    in
    List.fold_left (fun acc c -> go c acc) acc (Bs.children bs d)
  in
  List.rev (go (Bs.root bs) [])

let apply_step bs (kind, a, b, c) =
  match kind with
  | 0 ->
    let elems = all_elements bs in
    let parent = List.nth elems (a mod List.length elems) in
    let cs = Bs.children bs parent in
    let after = if cs = [] then None else Some (List.nth cs (b mod List.length cs)) in
    ignore (Bs.insert_element bs ~parent ~after (Name.local (Printf.sprintf "x%d" (c mod 4))))
  | 1 ->
    let elems = all_elements bs in
    let parent = List.nth elems (a mod List.length elems) in
    let cs = Bs.children bs parent in
    let after = if cs = [] then None else Some (List.nth cs (b mod List.length cs)) in
    ignore (Bs.insert_text bs ~parent ~after (Printf.sprintf "ins%d" c))
  | 2 -> (
    match all_valued bs with
    | [] -> ()
    | vs -> Bs.set_content bs (List.nth vs (a mod List.length vs)) (Printf.sprintf "val%d" c))
  | _ -> (
    match all_leaves bs with
    | [] -> ()
    | ls -> Bs.delete bs (List.nth ls (a mod List.length ls)))

let serialized bs = Printer.to_string (Bs.to_document bs)

let paged_equals_memory_law seed =
  with_tmp @@ fun path ->
  let r = Gen.rng seed in
  let doc = Tree.document (gen_element 3 r) in
  let store = Store.create () in
  let root = Convert.load store doc in
  let mem = Bs.of_store ~block_capacity:4 store root in
  let paged = Bs.of_store ~block_capacity:4 store root in
  let p = Bs.attach_pager paged ~capacity:2 (Pf.create ~page_size:512 path) in
  Pager.clear p (* cold: every access below faults for real *);
  let steps =
    List.init 15 (fun _ -> (Gen.int r 4, Gen.int r 1000, Gen.int r 1000, Gen.int r 1000))
  in
  List.iter
    (fun step ->
      apply_step mem step;
      apply_step paged step)
    steps;
  let ok_doc = serialized mem = serialized paged in
  let ok_int =
    Bs.check_integrity paged = Ok () && Bs.check_integrity mem = Ok ()
  in
  let query q bs =
    match Xsm_xpath.Eval.Over_storage.eval_string bs (Bs.root bs) q with
    | Ok ds -> Some (List.map (Bs.string_value bs) ds)
    | Error _ -> None
  in
  let ok_query =
    List.for_all (fun q -> query q mem = query q paged) [ "//n1"; "//x0"; "/n0"; "//n2/n3" ]
  in
  Pf.close (Pager.file p);
  if not ok_doc then Q.Test.fail_report "paged document diverged from in-memory";
  if not ok_int then Q.Test.fail_report "integrity violated";
  if not ok_query then Q.Test.fail_report "query results diverged";
  true

(* ---------------- checkpoint / reopen ---------------- *)

let checkpoint_reopen () =
  with_tmp @@ fun path ->
  let doc = Xsm_schema.Samples.library_document ~books:12 ~papers:6 () in
  let store = Store.create () in
  let root = Convert.load store doc in
  let bs = Bs.of_store ~block_capacity:8 store root in
  ignore (Bs.attach_pager bs ~capacity:4 (Pf.create path));
  (* mutate through the pool, then checkpoint *)
  let lib = List.hd (Bs.children bs (Bs.root bs)) in
  let d, _ = Bs.insert_element bs ~parent:lib ~after:None (Name.local "added") in
  ignore (Bs.insert_text bs ~parent:d ~after:None "after the snapshot");
  let expect = serialized bs in
  Bs.checkpoint bs ~lsn:0;
  (match Bs.pager bs with Some p -> Pf.close (Pager.file p) | None -> ());
  (* reopen from the file alone, through a cold 3-block pool *)
  let pf = Pf.open_existing path in
  check "checkpointed file is clean" true (Pf.clean pf);
  let bs2 = Bs.of_page_file ~capacity:3 pf in
  check_str "reopen reproduces the document" expect (serialized bs2);
  check "reopen integrity" true (Bs.check_integrity bs2 = Ok ());
  check_int "descriptor count survives" (Bs.descriptor_count bs) (Bs.descriptor_count bs2);
  (* the reopened storage is live: it accepts updates and re-serializes *)
  let lib2 = List.hd (Bs.children bs2 (Bs.root bs2)) in
  ignore (Bs.insert_element bs2 ~parent:lib2 ~after:None (Name.local "postreopen"));
  check "reopened storage updatable" true (Bs.check_integrity bs2 = Ok ());
  (match Bs.pager bs2 with
  | Some p ->
    check "reopen faulted from disk" true ((Pager.stats p).Pager.reads > 0);
    Pf.close (Pager.file p)
  | None -> Alcotest.fail "of_page_file must attach a pager")

let reopen_refuses_unclean () =
  with_tmp @@ fun path ->
  let pf = Pf.create path in
  ignore (Pf.write_blob pf ~lsn:0 "data but no checkpoint");
  Pf.close pf;
  let pf = Pf.open_existing path in
  check "unclean file refused" true
    (match Bs.of_page_file ~capacity:2 pf with
    | exception Xsm_pager.Codec.Corrupt _ -> true
    | _ -> false);
  Pf.close pf

(* ---------------- crash sweep: WAL-ordering invariant ---------------- *)

(* a value-heavy two-level document: enough top-level subtrees for
   many WAL records, enough text for many blocks *)
let sweep_doc sections =
  let buf = Buffer.create 4096 in
  Buffer.add_string buf "<root>";
  for i = 1 to sections do
    Buffer.add_string buf (Printf.sprintf "<sec id=\"s%d\">" i);
    for j = 1 to 6 do
      Buffer.add_string buf (Printf.sprintf "<item>payload %d.%d %s</item>" i j (String.make 40 'p'))
    done;
    Buffer.add_string buf "</sec>"
  done;
  Buffer.add_string buf "</root>";
  Buffer.contents buf

let crash_sweep () =
  let xml = sweep_doc 12 in
  let wal_path = Filename.temp_file "xsm-pager-crash" ".wal" in
  let cleanup p = if Sys.file_exists p then Sys.remove p in
  Fun.protect ~finally:(fun () -> cleanup wal_path) @@ fun () ->
  (* find the record count of a clean run first *)
  let records =
    cleanup wal_path;
    let w = match Wal.Writer.create wal_path with Ok w -> w | Error _ -> assert false in
    let bl = BL.create ~block_capacity:4 ~wal:w () in
    let rec feed sax = match Sax.next sax with
      | None -> ()
      | Some ev -> BL.feed bl ev; feed sax
    in
    feed (Sax.of_string xml);
    ignore (BL.finish bl);
    let n = Wal.Writer.records_written w in
    Wal.Writer.close w;
    n
  in
  check "sweep has records" true (records > 3);
  for n = 0 to records do
    List.iter
      (fun partial_bytes ->
        with_tmp @@ fun page_path ->
        cleanup wal_path;
        let w =
          match Wal.Writer.create ~crash:{ Wal.after_records = n; partial_bytes } wal_path with
          | Ok w -> w
          | Error _ -> assert false
        in
        let bl = BL.create ~block_capacity:4 ~wal:w () in
        let bs = BL.storage bl in
        let pf = Pf.create ~page_size:512 page_path in
        ignore (Bs.attach_pager ~wal:(Wal.Writer.pager_hook w) bs ~capacity:2 pf);
        (* bulk load stamps one past the current record: the covering
           subtree record has not landed yet *)
        Bs.set_lsn_source bs (fun () -> Wal.Writer.lsn w + 1);
        let crashed =
          try
            let sax = Sax.of_string xml in
            let rec feed () = match Sax.next sax with
              | None -> ()
              | Some ev -> BL.feed bl ev; feed ()
            in
            feed ();
            ignore (BL.finish bl);
            Bs.checkpoint bs ~lsn:(Wal.Writer.lsn w);
            false
          with Wal.Crashed -> true
        in
        Pf.close pf;
        check (Printf.sprintf "crash fires iff reachable (n=%d)" n) (n <= records) crashed;
        (* THE invariant: whatever the crash point, no page on disk
           carries an LSN beyond the WAL's reader-visible synced
           prefix — recovery never meets unlogged page state *)
        let synced =
          match Wal.read wal_path with
          | Ok rr -> rr.Wal.synced_prefix
          | Error _ -> Alcotest.fail "wal unreadable after crash"
        in
        let pf = Pf.open_existing page_path in
        Pf.iter_pages pf (fun page ~kind ~lsn ->
            if kind = 1 && lsn > synced then
              Alcotest.failf
                "crash n=%d partial=%d: page %d has lsn %d past synced prefix %d" n
                partial_bytes page lsn synced);
        Pf.close pf)
      [ 0; 5 ]
  done

let suite =
  [
    ( "pager.page_file",
      [
        Alcotest.test_case "blob round-trips and reuse" `Quick page_file_roundtrip;
        Alcotest.test_case "corruption detected" `Quick page_file_corruption;
        Alcotest.test_case "clean-flag contract" `Quick page_file_clean_flag;
      ] );
    ( "pager.2q",
      [
        Alcotest.test_case "ghost promotion to Am" `Quick twoq_ghost_promotion;
        Alcotest.test_case "scan resistance" `Quick twoq_scan_resistance;
        Alcotest.test_case "pin overflow" `Quick pin_overflow;
        Alcotest.test_case "WAL-ordered write-back" `Quick wal_ordered_write_back;
      ] );
    ( "pager.storage",
      [
        QCheck_alcotest.to_alcotest
          (Q.Test.make ~count:60 ~name:"paged(capacity 2) = in-memory"
             (Q.make ~print:string_of_int Q.Gen.(int_bound 1_000_000))
             paged_equals_memory_law);
        Alcotest.test_case "checkpoint/reopen round-trip" `Quick checkpoint_reopen;
        Alcotest.test_case "unclean file refused" `Quick reopen_refuses_unclean;
        Alcotest.test_case "crash sweep: synced-prefix bound" `Quick crash_sweep;
      ] );
  ]
