(* Tests for xsm_xml: names, trees, parser, printer, content equality. *)

open Xsm_xml

let check = Alcotest.(check bool)
let check_str = Alcotest.(check string)
let check_int = Alcotest.(check int)

let parse_ok s =
  match Parser.parse_document s with
  | Ok d -> d
  | Error e -> Alcotest.failf "parse failed: %s" (Parser.error_to_string e)

let parse_err s =
  match Parser.parse_document s with
  | Ok _ -> Alcotest.failf "expected a parse error for %S" s
  | Error e -> e

(* ---------------- names ---------------- *)

let test_name_parse () =
  (match Name.of_string "xsd:element" with
  | Ok n ->
    Alcotest.(check (option string)) "prefix" (Some "xsd") n.Name.prefix;
    check_str "local" "element" n.Name.local
  | Error e -> Alcotest.fail e);
  (match Name.of_string "Book" with
  | Ok n -> check "no prefix" true (n.Name.prefix = None)
  | Error e -> Alcotest.fail e)

let test_name_invalid () =
  List.iter
    (fun s -> check ("reject " ^ s) true (Result.is_error (Name.of_string s)))
    [ ""; ":x"; "x:"; "a:b:c"; "1abc"; "with space"; "-dash" ]

let test_name_order () =
  let a = Name.of_string_exn "a" and b = Name.of_string_exn "b" in
  check "a < b" true (Name.compare a b < 0);
  let pa = Name.of_string_exn "p:a" in
  check "a <> p:a" false (Name.equal a pa);
  check_str "to_string" "p:a" (Name.to_string pa)

let test_ncname () =
  check "simple" true (Name.is_ncname "abc-1.x_y");
  check "colon" false (Name.is_ncname "a:b");
  check "empty" false (Name.is_ncname "");
  check "digit start" false (Name.is_ncname "1a")

(* ---------------- trees ---------------- *)

let sample_tree () =
  Tree.elem "library"
    ~children:
      [
        Tree.element
          (Tree.elem "book"
             ~attrs:[ Tree.attr "id" "b1" ]
             ~children:[ Tree.element (Tree.elem "title" ~children:[ Tree.text "T1" ]) ]);
        Tree.element
          (Tree.elem "book"
             ~attrs:[ Tree.attr "id" "b2" ]
             ~children:
               [
                 Tree.element (Tree.elem "title" ~children:[ Tree.text "T2" ]);
                 Tree.element (Tree.elem "author" ~children:[ Tree.text "A" ]);
               ]);
      ]

let test_tree_observers () =
  let t = sample_tree () in
  check_int "child elements" 2 (List.length (Tree.child_elements t));
  check_int "books" 2 (List.length (Tree.child_elements_named t (Name.local "book")));
  check_int "papers" 0 (List.length (Tree.child_elements_named t (Name.local "paper")));
  check_str "text content" "T1T2A" (Tree.text_content t);
  check_int "depth" 3 (Tree.depth t);
  (* 6 elements + 2 attributes + 3 texts *)
  check_int "node count" 11 (Tree.node_count t);
  match Tree.first_child_named t (Name.local "book") with
  | Some b -> check "attr" true (Tree.attribute_value b (Name.local "id") = Some "b1")
  | None -> Alcotest.fail "book not found"

let test_fold_elements () =
  let t = sample_tree () in
  let names = List.rev (Tree.fold_elements (fun acc e -> Name.to_string e.Tree.name :: acc) [] t) in
  Alcotest.(check (list string)) "pre-order" [ "library"; "book"; "title"; "book"; "title"; "author" ] names

(* ---------------- parser ---------------- *)

let test_parse_basic () =
  let d = parse_ok "<?xml version=\"1.0\" encoding=\"UTF-8\"?><a b=\"1\"><c/>text</a>" in
  check_str "version" "1.0" d.Tree.version;
  Alcotest.(check (option string)) "encoding" (Some "UTF-8") d.Tree.encoding;
  check_str "root" "a" (Name.to_string d.Tree.root.Tree.name);
  check_int "children" 2 (List.length d.Tree.root.Tree.children)

let test_parse_entities () =
  let d = parse_ok "<a>&lt;&gt;&amp;&apos;&quot;&#65;&#x42;</a>" in
  check_str "entities" "<>&'\"AB" (Tree.text_content d.Tree.root)

let test_parse_cdata_comment_pi () =
  let d = parse_ok "<a><![CDATA[<raw>&]]><!-- note --><?pi data?>tail</a>" in
  match d.Tree.root.Tree.children with
  | [ Tree.Cdata c; Tree.Comment m; Tree.Pi { target; data }; Tree.Text t ] ->
    check_str "cdata" "<raw>&" c;
    check_str "comment" " note " m;
    check_str "pi target" "pi" target;
    check_str "pi data" "data" data;
    check_str "tail" "tail" t
  | _ -> Alcotest.fail "unexpected child structure"

let test_parse_doctype_skipped () =
  let d = parse_ok "<?xml version=\"1.0\"?><!DOCTYPE note [<!ELEMENT note ANY>]><note/>" in
  check_str "root" "note" (Name.to_string d.Tree.root.Tree.name)

let test_parse_attribute_quotes () =
  let d = parse_ok "<a x='single' y=\"double\" z='with \"quotes\"'/>" in
  let v n = Tree.attribute_value d.Tree.root (Name.local n) in
  Alcotest.(check (option string)) "single" (Some "single") (v "x");
  Alcotest.(check (option string)) "double" (Some "double") (v "y");
  Alcotest.(check (option string)) "nested" (Some "with \"quotes\"") (v "z")

let test_parse_errors () =
  List.iter
    (fun s -> ignore (parse_err s))
    [
      "<a>";  (* unterminated *)
      "<a></b>";  (* mismatched *)
      "<a x=\"1\" x=\"2\"/>";  (* duplicate attribute *)
      "<a/><b/>";  (* two roots *)
      "<a>&unknown;</a>";  (* unknown entity *)
      "<a b=unquoted/>";
      "";
      "just text";
      "<a><!-- unterminated</a>";
    ]

let test_parse_error_location () =
  let e = parse_err "<a>\n  <b>\n</a>" in
  check "line recorded" true (e.Parser.line >= 2)

let test_deep_nesting () =
  let n = 2000 in
  let buf = Buffer.create (n * 7) in
  for i = 0 to n - 1 do
    Buffer.add_string buf (Printf.sprintf "<e%d>" i)
  done;
  for i = n - 1 downto 0 do
    Buffer.add_string buf (Printf.sprintf "</e%d>" i)
  done;
  let d = parse_ok (Buffer.contents buf) in
  check_int "depth" n (Tree.depth d.Tree.root)

let test_mixed_whitespace_kept () =
  let d = parse_ok "<a> <b/> </a>" in
  check_int "three children" 3 (List.length d.Tree.root.Tree.children)

(* ---------------- printer ---------------- *)

let test_escape () =
  check_str "text" "a&lt;b&gt;c&amp;d" (Printer.escape_text "a<b>c&d");
  check_str "attr quote" "say &quot;hi&quot;" (Printer.escape_attribute "say \"hi\"")

let test_print_parse_roundtrip () =
  let t = sample_tree () in
  let s = Printer.element_to_string t in
  match Parser.parse_element s with
  | Ok t' -> check "structural equality" true (Tree.equal_element t t')
  | Error e -> Alcotest.failf "reparse failed: %s" (Parser.error_to_string e)

let test_print_special_chars () =
  let t = Tree.elem "a" ~attrs:[ Tree.attr "k" "<&\">" ] ~children:[ Tree.text "<&>" ] in
  match Parser.parse_element (Printer.element_to_string t) with
  | Ok t' -> check "roundtrip with escapes" true (Tree.equal_element t t')
  | Error e -> Alcotest.failf "reparse failed: %s" (Parser.error_to_string e)

let test_pretty_print_reparses () =
  let t = sample_tree () in
  let s = Printer.element_to_pretty_string t in
  match Parser.parse_element s with
  | Ok t' -> check "content equal" true (Tree.equal_element_content t t')
  | Error e -> Alcotest.failf "reparse failed: %s" (Parser.error_to_string e)

(* ---------------- end-of-line normalization (§2.11) ---------------- *)

let test_eol_normalize_function () =
  check_str "CRLF, lone CR, trailing CR" "a\nb\nc\nd\n"
    (Parser.normalize_eol "a\r\nb\rc\nd\r");
  check_str "CR CRLF" "a\n\nb" (Parser.normalize_eol "a\r\r\nb");
  check_str "identity without CR" "plain\ntext" (Parser.normalize_eol "plain\ntext")

let test_eol_normalized_in_documents () =
  let lf = parse_ok "<a>x\ny</a>\n" in
  check "CRLF input" true
    (Tree.equal_content ~ignore_whitespace:false lf (parse_ok "<a>x\r\ny</a>\r\n"));
  check "CR input" true
    (Tree.equal_content ~ignore_whitespace:false lf (parse_ok "<a>x\ry</a>\r"))

let test_eol_charref_cr_survives () =
  (* §2.11 normalizes literal line breaks {e before} reference
     expansion: an author writing [&#13;] asked for a carriage return
     and must keep it *)
  let d = parse_ok "<a>x&#13;y</a>" in
  match d.Tree.root.Tree.children with
  | [ Tree.Text t ] -> check_str "literal CR kept" "x\ry" t
  | _ -> Alcotest.fail "expected one text child"

let test_print_cr_roundtrips () =
  (* the printer must emit [&#13;] for a CR, or the reparse would
     §2.11-normalize it into a newline *)
  let t = Tree.elem "a" ~attrs:[ Tree.attr "k" "p\rq" ] ~children:[ Tree.text "x\ry" ] in
  let s = Printer.element_to_string t in
  check "no raw CR in output" true (not (String.contains s '\r'));
  match Parser.parse_element s with
  | Ok t' -> check "CR survives print/parse" true (Tree.equal_element t t')
  | Error e -> Alcotest.failf "reparse failed: %s" (Parser.error_to_string e)

(* ---------------- content equality ---------------- *)

let test_content_equality_comments () =
  let a = parse_ok "<a><b/><!-- x --><b/></a>" in
  let b = parse_ok "<a><b/><b/></a>" in
  check "comments ignored" true (Tree.equal_content a b)

let test_content_equality_attr_order () =
  let a = parse_ok "<a x=\"1\" y=\"2\"/>" in
  let b = parse_ok "<a y=\"2\" x=\"1\"/>" in
  check "attribute order irrelevant" true (Tree.equal_content a b)

let test_content_equality_ws () =
  let a = parse_ok "<a>\n  <b/>\n</a>" in
  let b = parse_ok "<a><b/></a>" in
  check "ignorable whitespace" true (Tree.equal_content a b);
  check "strict keeps it" false (Tree.equal_content ~ignore_whitespace:false a b)

let test_content_equality_text_matters () =
  let a = parse_ok "<a>hello</a>" in
  let b = parse_ok "<a>world</a>" in
  check "text compared" false (Tree.equal_content a b)

let test_content_equality_merges_adjacent () =
  let a = parse_ok "<a>one<![CDATA[ two]]></a>" in
  let b = parse_ok "<a>one two</a>" in
  check "cdata merged with text" true (Tree.equal_content a b)

let suite =
  [
    ( "xml.name",
      [
        Alcotest.test_case "parse" `Quick test_name_parse;
        Alcotest.test_case "invalid" `Quick test_name_invalid;
        Alcotest.test_case "order" `Quick test_name_order;
        Alcotest.test_case "ncname" `Quick test_ncname;
      ] );
    ( "xml.tree",
      [
        Alcotest.test_case "observers" `Quick test_tree_observers;
        Alcotest.test_case "fold" `Quick test_fold_elements;
      ] );
    ( "xml.parser",
      [
        Alcotest.test_case "basic" `Quick test_parse_basic;
        Alcotest.test_case "entities" `Quick test_parse_entities;
        Alcotest.test_case "cdata/comment/pi" `Quick test_parse_cdata_comment_pi;
        Alcotest.test_case "doctype" `Quick test_parse_doctype_skipped;
        Alcotest.test_case "attribute quotes" `Quick test_parse_attribute_quotes;
        Alcotest.test_case "errors" `Quick test_parse_errors;
        Alcotest.test_case "error location" `Quick test_parse_error_location;
        Alcotest.test_case "deep nesting" `Quick test_deep_nesting;
        Alcotest.test_case "whitespace kept" `Quick test_mixed_whitespace_kept;
      ] );
    ( "xml.printer",
      [
        Alcotest.test_case "escape" `Quick test_escape;
        Alcotest.test_case "roundtrip" `Quick test_print_parse_roundtrip;
        Alcotest.test_case "special chars" `Quick test_print_special_chars;
        Alcotest.test_case "pretty reparses" `Quick test_pretty_print_reparses;
      ] );
    ( "xml.eol",
      [
        Alcotest.test_case "normalize_eol" `Quick test_eol_normalize_function;
        Alcotest.test_case "CRLF/CR parse alike" `Quick test_eol_normalized_in_documents;
        Alcotest.test_case "&#13; stays a CR" `Quick test_eol_charref_cr_survives;
        Alcotest.test_case "CR print/parse roundtrip" `Quick test_print_cr_roundtrips;
      ] );
    ( "xml.content-equality",
      [
        Alcotest.test_case "comments ignored" `Quick test_content_equality_comments;
        Alcotest.test_case "attr order" `Quick test_content_equality_attr_order;
        Alcotest.test_case "whitespace" `Quick test_content_equality_ws;
        Alcotest.test_case "text matters" `Quick test_content_equality_text_matters;
        Alcotest.test_case "adjacent text" `Quick test_content_equality_merges_adjacent;
      ] );
  ]
